package coaxial

// Per-figure and per-table experiment benchmarks: each regenerates its
// figure's rows/series (on a representative workload subset sized for a
// laptop; use cmd/coaxial-report for full-suite regeneration) and reports
// the headline number as a benchmark metric.
//
// Run: go test -bench=Fig -benchtime=1x
// Full-scale equivalents: cmd/coaxial-report -fig N / -table N.

import (
	"fmt"
	"math"
	"os"
	"testing"
)

// benchRC keeps figure benchmarks tractable on one CPU.
func benchRC() RunConfig {
	rc := DefaultRunConfig()
	rc.WarmupInstr, rc.MeasureInstr = 6_000, 25_000
	return rc
}

// benchWorkloads is the cross-suite representative set.
func benchWorkloads(b *testing.B, n int) []Workload {
	b.Helper()
	reps := RepresentativeWorkloads()
	if n > 0 && n < len(reps) {
		reps = reps[:n]
	}
	return reps
}

func BenchmarkFig1BandwidthPerPin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		norm := Fig1BandwidthPerPin()
		if i == 0 {
			ReportFig1(os.Stdout)
		}
		_ = norm
	}
}

func BenchmarkFig2aLoadLatency(b *testing.B) {
	utils := []float64{0.05, 0.2, 0.4, 0.6, 0.8}
	for i := 0; i < b.N; i++ {
		pts, err := Fig2aLoadLatency(utils, 300, 2500, 7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ReportFig2a(os.Stdout, pts)
			b.ReportMetric(pts[len(pts)-1].MeanNS/pts[0].MeanNS, "knee_x")
		}
	}
}

func BenchmarkFig2bBreakdown(b *testing.B) {
	wl := benchWorkloads(b, 0)
	for i := 0; i < b.N; i++ {
		rows, err := MainResults(wl, benchRC())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ReportFig2b(os.Stdout, rows)
			var qshare float64
			for _, r := range rows {
				if r.Base.TotalNS > 0 {
					qshare += r.Base.QueueNS / r.Base.TotalNS
				}
			}
			b.ReportMetric(qshare/float64(len(rows))*100, "queue_share_%")
		}
	}
}

func BenchmarkFig5Main(b *testing.B) {
	wl := benchWorkloads(b, 0)
	for i := 0; i < b.N; i++ {
		rows, err := MainResults(wl, benchRC())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ReportFig5(os.Stdout, rows)
			b.ReportMetric(MeanSpeedup(rows), "mean_speedup_x")
		}
	}
}

func BenchmarkFig6Mixes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := Fig6Mixes(3, benchRC())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ReportFig6(os.Stdout, rows)
			var g float64 = 1
			for _, r := range rows {
				g *= r.Speedup
			}
			b.ReportMetric(pow(g, 1/float64(len(rows))), "geomean_speedup_x")
		}
	}
}

func BenchmarkFig7aCALM(b *testing.B) {
	wl := benchWorkloads(b, 2) // 2 workloads x 6 mechanisms x 2 systems
	for i := 0; i < b.N; i++ {
		rows, err := Fig7CALM(wl, benchRC())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ReportFig7(os.Stdout, rows)
			// Headline: CALM_70% lift over serial COAXIAL (variant 4 vs 0).
			lift := 0.0
			for _, r := range rows {
				lift += r.CoaxSpeedup[4] / r.CoaxSpeedup[0]
			}
			b.ReportMetric(lift/float64(len(rows)), "calm70_lift_x")
		}
	}
}

func BenchmarkFig7bCALMDecisions(b *testing.B) {
	wl := benchWorkloads(b, 2)
	for i := 0; i < b.N; i++ {
		rows, err := Fig7CALM(wl[:1], benchRC())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// FP/FN of CALM_70% on COAXIAL.
			d := rows[0].CoaxDecisions[4]
			fmt.Printf("Fig. 7b headline (%s, calm-70): FP %.1f%% of mem accesses, FN %.1f%% of LLC misses\n",
				rows[0].Workload, d.FPRate()*100, d.FNRate()*100)
			b.ReportMetric(d.FPRate()*100, "fp_%")
			b.ReportMetric(d.FNRate()*100, "fn_%")
		}
	}
	_ = wl
}

func BenchmarkFig8Configs(b *testing.B) {
	wl := benchWorkloads(b, 4)
	for i := 0; i < b.N; i++ {
		rows, err := Fig8Configs(wl, benchRC())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ReportFig8(os.Stdout, rows)
			var s4, sa float64
			for _, r := range rows {
				s4 += r.Speedup4
				sa += r.SpeedupA
			}
			b.ReportMetric(sa/s4, "asym_over_4x")
		}
	}
}

func BenchmarkFig9ReadWrite(b *testing.B) {
	wl := benchWorkloads(b, 0)
	for i := 0; i < b.N; i++ {
		rows, err := MainResults(wl, benchRC())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ReportFig9(os.Stdout, rows)
			var rw float64
			n := 0
			for _, r := range rows {
				if r.Base.WriteGBs > 0 {
					rw += r.Base.ReadGBs / r.Base.WriteGBs
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(rw/float64(n), "mean_rw_ratio")
			}
		}
	}
}

func BenchmarkFig10LatencySensitivity(b *testing.B) {
	wl := benchWorkloads(b, 4)
	for i := 0; i < b.N; i++ {
		rows, err := Fig10LatencySensitivity(wl, benchRC())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ReportFig10(os.Stdout, rows)
			var s50, s70 float64
			for _, r := range rows {
				s50 += r.Speedup50
				s70 += r.Speedup70
			}
			b.ReportMetric(s70/s50, "premium70_retention")
		}
	}
}

func BenchmarkFig11Utilization(b *testing.B) {
	wl := benchWorkloads(b, 3)
	for i := 0; i < b.N; i++ {
		rows, err := Fig11Utilization(wl, benchRC())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ReportFig11(os.Stdout, rows)
			var oneCore, allCores float64
			for _, r := range rows {
				oneCore += r.Speedups[0]
				allCores += r.Speedups[3]
			}
			b.ReportMetric(oneCore/float64(len(rows)), "speedup_1core_x")
			b.ReportMetric(allCores/float64(len(rows)), "speedup_12core_x")
		}
	}
}

func BenchmarkTableIAreas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			ReportTableI(os.Stdout)
		}
	}
}

func BenchmarkTableIIConfigs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfgs := TableIIConfigs()
		if i == 0 {
			ReportTableII(os.Stdout)
			b.ReportMetric(cfgs[1].RelativeArea(), "coaxial5x_rel_area")
		}
	}
}

func BenchmarkTableIVCharacterization(b *testing.B) {
	wl := benchWorkloads(b, 0)
	for i := 0; i < b.N; i++ {
		rows, err := MainResults(wl, benchRC())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ReportTableIV(os.Stdout, rows, wl)
		}
	}
}

func BenchmarkTableVPower(b *testing.B) {
	wl := benchWorkloads(b, 0)
	for i := 0; i < b.N; i++ {
		rows, err := MainResults(wl, benchRC())
		if err != nil {
			b.Fatal(err)
		}
		base, coax := TableVPower(rows)
		if i == 0 {
			ReportTableV(os.Stdout, base, coax)
			b.ReportMetric(coax.Metrics.RelEDP, "rel_edp")
			b.ReportMetric(coax.Metrics.RelED2P, "rel_ed2p")
		}
	}
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}

// BenchmarkAblationChannelScaling sweeps COAXIAL's channel count on one
// bandwidth-bound workload (extension study).
func BenchmarkAblationChannelScaling(b *testing.B) {
	w, _ := WorkloadByName("stream-scale")
	for i := 0; i < b.N; i++ {
		rows, err := AblationChannelScaling(w, []int{1, 2, 4}, benchRC())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ReportChannelScaling(os.Stdout, w.Params.Name, rows)
			b.ReportMetric(rows[len(rows)-1].Speedup, "speedup_4ch_x")
		}
	}
}

// BenchmarkAblationCALMThreshold sweeps CALM_R's regulation threshold.
func BenchmarkAblationCALMThreshold(b *testing.B) {
	w, _ := WorkloadByName("Components")
	for i := 0; i < b.N; i++ {
		rows, err := AblationCALMThreshold(w, []float64{0.5, 0.7, 0.9}, benchRC())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ReportCALMThreshold(os.Stdout, w.Params.Name, rows)
			b.ReportMetric(rows[1].Speedup, "calm70_speedup_x")
		}
	}
}

// BenchmarkAblationMSHRs sweeps the per-core MLP budget.
func BenchmarkAblationMSHRs(b *testing.B) {
	w, _ := WorkloadByName("kmeans")
	for i := 0; i < b.N; i++ {
		rows, err := AblationMSHRs(w, []int{8, 16, 32}, benchRC())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ReportMSHRs(os.Stdout, w.Params.Name, rows)
			b.ReportMetric(rows[len(rows)-1].CoaxSpeedup, "speedup_32mshr_x")
		}
	}
}

// BenchmarkCapacityStudy evaluates the §IV-E cost model (no simulation).
func BenchmarkCapacityStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := CapacityStudy()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ReportCapacity(os.Stdout, rows)
			b.ReportMetric(rows[len(rows)-1].CostSaving*100, "cost_saving_%")
		}
	}
}
