package coaxial

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"coaxial/internal/rack"
	"coaxial/internal/sim"
)

// Runner is the primary entry point for experiments: a reusable driver
// holding the run configuration (seed, windows, clocking, parallelism) set
// once through functional options, plus a cache of warmed system state
// shared across runs. The one-shot Run/RunMix/RunSuite functions remain as
// thin wrappers for existing callers.
//
// Sweeps benefit twice: every Runner method takes a context.Context and
// stops cleanly at cycle-window boundaries on cancellation (returning the
// partial measurements with a wrapping error), and runs that share a warm
// key — same cache geometry, workloads, seed, and functional-warmup budget;
// e.g. the points of a CALM-threshold or link-latency sweep — pay the LLC
// pre-fill and functional warmup once instead of once per point. Warm
// reuse is bit-identical to cold starts by construction.
//
// A Runner is safe for concurrent use.
type Runner struct {
	rc   RunConfig
	warm *warmCache
}

// warmCache is the warm-state memo shared by a Runner and every derived
// Runner (With): entries keyed by sim.WarmKey plus the capture tally
// surfaced through WarmStats.
type warmCache struct {
	mu       sync.Mutex
	entries  map[string]*warmEntry //lint:guardedby mu
	captures int                   //lint:guardedby mu
}

// warmEntry memoizes one CaptureWarm call; the sync.Once collapses
// concurrent suite workers racing for the same key into a single capture.
type warmEntry struct {
	once sync.Once
	ws   *sim.WarmState
	ok   bool
	err  error
}

// RunnerOption configures a Runner at construction.
type RunnerOption func(*Runner)

// WithSeed sets the workload-generation seed.
func WithSeed(seed uint64) RunnerOption {
	return func(r *Runner) { r.rc.Seed = seed }
}

// WithWorkers bounds RunSuite's job-level parallelism (0 = GOMAXPROCS).
func WithWorkers(n int) RunnerOption {
	return func(r *Runner) { r.rc.Workers = n }
}

// WithClocking selects the main-loop time-advance strategy (EventDriven,
// the default, or the bit-identical CycleByCycle reference loop).
func WithClocking(m Clocking) RunnerOption {
	return func(r *Runner) { r.rc.Clocking = m }
}

// WithParallelism sets the intra-system tick-phase worker count: cores and
// memory backends due at a cycle tick on n goroutines between the cycle's
// synchronization points. Results are bit-identical for every n; n <= 1
// ticks sequentially.
func WithParallelism(n int) RunnerOption {
	return func(r *Runner) { r.rc.Parallelism = n }
}

// WithWindows sets the simulation windows, per core: the timing-free
// functional cache warmup, the timed (discarded) warmup, and the measured
// instruction budget. A zero functionalWarmup keeps the 1M-instruction
// default; measure must be nonzero.
func WithWindows(functionalWarmup, warmup, measure uint64) RunnerOption {
	return func(r *Runner) {
		r.rc.FunctionalWarmupInstr = functionalWarmup
		r.rc.WarmupInstr = warmup
		r.rc.MeasureInstr = measure
	}
}

// WithValidation enables the differential validation harness for every
// run: an independent DDR5 timing oracle on each sub-channel re-checks
// every DRAM command against JEDEC-style constraints, and a request-
// lifecycle checker verifies issue/complete pairing, timestamp
// monotonicity, latency-breakdown consistency, and MSHR/queue-occupancy
// bounds. A run whose harness observes any violation returns a
// *ValidationError (with the full report) alongside its complete Result.
// The harness is observation-only: measurements are bit-identical with or
// without it. See DESIGN.md "Validation".
func WithValidation() RunnerOption {
	return func(r *Runner) { r.rc.Validate = true }
}

// WithSampling enables sampled simulation: the measure phase alternates
// detailed windows of `detail` per-core instructions with functional
// fast-forward gaps of `fastfwd`, until the full measure budget (detailed
// + fast-forwarded) is accounted. Detailed windows run the normal timing
// model; gaps advance cache and workload state functionally and jump the
// clock by the gap's estimated duration (from each core's IPC calibrated
// over the preceding window) so in-flight work drains and periodic DRAM
// state stays realistic. Headline rates come from the detailed windows
// only. Trades a bounded accuracy loss (see the accuracy-budget test) for
// a large speedup on long windows; zero for either argument disables
// sampling.
func WithSampling(detail, fastfwd uint64) RunnerOption {
	return func(r *Runner) {
		r.rc.SampleDetailInstr = detail
		r.rc.SampleFastFwdInstr = fastfwd
	}
}

// WithRackParallelism sets the rack-level host-phase worker count for
// RunRack: hosts due at a lockstep tick advance on n goroutines between
// the rack's phase barriers. Results are bit-identical for every n
// (TestRackClockingEquivalence); n <= 1 ticks hosts sequentially.
func WithRackParallelism(n int) RunnerOption {
	return func(r *Runner) { r.rc.RackParallelism = n }
}

// WithRunConfig replaces the whole run configuration (escape hatch for
// fields without a dedicated option, e.g. SkipFunctional). Options applied
// after it override individual fields.
func WithRunConfig(rc RunConfig) RunnerOption {
	return func(r *Runner) { r.rc = rc }
}

// WithProgress attaches a per-window progress observer
// (RunConfig.OnProgress): the run loop invokes fn at every cancellation-
// poll boundary and once at each phase end, from the simulation goroutine.
// Observation-only — results are bit-identical with or without it. Long-
// running services derive a per-request Runner with it (see Runner.With)
// to stream partial windows without forking the run path.
func WithProgress(fn func(Progress)) RunnerOption {
	return func(r *Runner) { r.rc.OnProgress = fn }
}

// NewRunner builds a Runner over DefaultRunConfig, modified by opts.
func NewRunner(opts ...RunnerOption) *Runner {
	r := &Runner{rc: DefaultRunConfig(), warm: &warmCache{entries: make(map[string]*warmEntry)}}
	for _, o := range opts {
		o(r)
	}
	return r
}

// With returns a Runner sharing this one's warm-state cache but running
// under a configuration derived by opts — the per-request seam a service
// needs: attach a progress observer or different windows for one job
// without forfeiting warm reuse across jobs. Sharing is always sound
// because warm keys cover every facet a snapshot depends on (geometry,
// seed, functional budget, topology); both Runners remain safe for
// concurrent use.
func (r *Runner) With(opts ...RunnerOption) *Runner {
	nr := &Runner{rc: r.rc, warm: r.warm}
	for _, o := range opts {
		o(nr)
	}
	return nr
}

// Config returns a copy of the effective run configuration.
func (r *Runner) Config() RunConfig { return r.rc }

// WarmStats summarizes the shared warm-state cache (Runner.WarmStats).
type WarmStats struct {
	// Entries is the number of resident warm snapshots.
	Entries int
	// Captures counts CaptureWarm executions since construction: lookups
	// that could not be served by a memoized snapshot. A sweep or service
	// batch that reuses warm state leaves it unchanged.
	Captures int
}

// WarmStats reports the warm-state cache shared by this Runner and every
// Runner derived from it with With.
func (r *Runner) WarmStats() WarmStats {
	r.warm.mu.Lock()
	defer r.warm.mu.Unlock()
	return WarmStats{Entries: len(r.warm.entries), Captures: r.warm.captures}
}

// Run executes one experiment: cfg's system running the same workload on
// every active core (the paper's rate mode).
func (r *Runner) Run(ctx context.Context, cfg Config, w Workload) (Result, error) {
	active := cfg.ActiveCores
	if active == 0 {
		active = cfg.Cores
	}
	wl := make([]Workload, active)
	for i := range wl {
		wl[i] = w
	}
	res, err := r.RunMix(ctx, cfg, wl)
	res.Workload = w.Params.Name
	return res, err
}

// RunMix executes one experiment with per-core workloads (Fig. 6 mixes).
func (r *Runner) RunMix(ctx context.Context, cfg Config, workloads []Workload) (Result, error) {
	if !r.rc.SkipFunctional {
		ws, ok, err := r.warmFor(cfg, workloads)
		if err != nil {
			return Result{}, err
		}
		if ok {
			return sim.RunMixWarm(ctx, cfg, ws, r.rc)
		}
	}
	return sim.RunMixCtx(ctx, cfg, workloads, r.rc)
}

// RunRack executes one rack-scale experiment: cfg's hosts running
// workloads[h] on host h (one per active core), their CXL channels
// contending for cfg's shared pooled devices. Per-host warm states are
// memoized like single-host runs — keys include the topology fingerprint
// (sim.WarmKey), so rack sweeps never alias entries across host counts or
// positions — and rack runs reuse nothing from single-host entries.
// Sampled simulation is incompatible with the lockstep rack and returns
// an error.
func (r *Runner) RunRack(ctx context.Context, cfg RackConfig, workloads [][]Workload) (RackResult, error) {
	if err := cfg.Validate(); err != nil {
		return RackResult{}, err
	}
	if len(workloads) != len(cfg.Hosts) {
		return RackResult{}, fmt.Errorf("coaxial: %q: %d workload sets for %d hosts", cfg.Name, len(workloads), len(cfg.Hosts))
	}
	if r.rc.SampleDetailInstr > 0 && r.rc.SampleFastFwdInstr > 0 {
		// Let RunFrom return its incompatibility error before any host
		// pays for a functional warmup capture.
		return rack.RunFrom(ctx, cfg, workloads, r.rc, nil)
	}
	var warm []*sim.WarmState
	if !r.rc.SkipFunctional {
		warm = make([]*sim.WarmState, len(cfg.Hosts))
		for h := range cfg.Hosts {
			hrc := rack.HostRunConfig(r.rc, cfg, h)
			hp := sim.HostParams{Index: h, AddrOffset: rack.HostAddrOffset(h)}
			ws, ok, err := r.warmForHost(cfg.Hosts[h], workloads[h], hrc, hp)
			if err != nil {
				return RackResult{}, fmt.Errorf("coaxial: %q host %d warmup: %w", cfg.Name, h, err)
			}
			if !ok {
				// Uncloneable generators: every host cold-starts so the
				// whole rack shares one code path.
				warm = nil
				break
			}
			warm[h] = ws
		}
	}
	return rack.RunFrom(ctx, cfg, workloads, r.rc, warm)
}

// warmFor returns the memoized warm state for this run's warm key,
// capturing it on first use. ok is false when the generators cannot be
// cloned (the caller then runs cold).
func (r *Runner) warmFor(cfg Config, workloads []Workload) (*sim.WarmState, bool, error) {
	return r.warmForHost(cfg, workloads, r.rc, sim.HostParams{})
}

// warmForHost is warmFor for a host embedded in a topology: hrc carries
// the host's derived seed and topology fingerprint (which key the cache),
// hp its placement. The sync.Once collapses concurrent workers racing for
// one key into a single capture.
func (r *Runner) warmForHost(cfg Config, workloads []Workload, hrc RunConfig, hp sim.HostParams) (*sim.WarmState, bool, error) {
	key := sim.WarmKey(cfg, workloads, hrc)
	c := r.warm
	c.mu.Lock()
	e, hit := c.entries[key]
	if !hit {
		e = &warmEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.ws, e.ok, e.err = sim.CaptureWarmHost(cfg, workloads, hrc, hp)
		c.mu.Lock()
		c.captures++
		c.mu.Unlock()
	})
	return e.ws, e.ok, e.err
}

// RunSuite executes jobs across the configured worker count, preserving
// order. All failures are aggregated into the returned error with
// errors.Join, each annotated with its job; results[i] is valid iff job i
// did not contribute an error. Cancellation stops scheduling further jobs
// and interrupts the running ones at their next cycle-window boundary.
func (r *Runner) RunSuite(ctx context.Context, jobs []SuiteJob) ([]Result, error) {
	results, errs := r.runSuite(ctx, jobs)
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("job %d (%s): %w", i, jobs[i].label(), err)
		}
	}
	return results, errors.Join(errs...)
}

// label names a job for error annotation.
func (j SuiteJob) label() string {
	if j.Rack != nil {
		return fmt.Sprintf("rack %s/%d hosts", j.Rack.Name, len(j.Rack.Hosts))
	}
	return j.Config.Name + "/" + j.Workload.Params.Name
}

// runJob dispatches one suite job down the single-system or rack path.
func (r *Runner) runJob(ctx context.Context, j SuiteJob) (Result, error) {
	if j.Rack != nil {
		rr, err := r.RunRack(ctx, *j.Rack, j.HostWorkloads)
		return rr.Summary(), err
	}
	return r.Run(ctx, j.Config, j.Workload)
}

// runSuite is the shared fan-out under both suite entry points.
func (r *Runner) runSuite(ctx context.Context, jobs []SuiteJob) ([]Result, []error) {
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	workers := r.rc.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				results[i], errs[i] = r.runJob(ctx, jobs[i])
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case ch <- i:
		case <-ctx.Done():
			// Unscheduled jobs report the cancellation; running ones
			// stop at their next cycle-window boundary on their own.
			for j := i; j < len(jobs); j++ {
				if errs[j] == nil {
					errs[j] = ctx.Err()
				}
			}
			break dispatch
		}
	}
	close(ch)
	wg.Wait()
	return results, errs
}
