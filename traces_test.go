package coaxial

import (
	"bytes"
	"testing"
)

func TestRecordAndReplayMatchesSynthetic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	w, _ := WorkloadByName("streamcluster")
	cfg := Baseline()
	cfg.ActiveCores = 2
	rc := RunConfig{WarmupInstr: 3_000, MeasureInstr: 15_000, Seed: 1,
		FunctionalWarmupInstr: 100_000}

	// Reference: synthetic generators directly.
	ref, err := Run(cfg, w, rc)
	if err != nil {
		t.Fatal(err)
	}

	// Record per-core traces long enough to cover functional warmup +
	// phases without looping (so streams don't replay from the start).
	const traceLen = 100_000 + 3_000 + 15_000 + 400_000
	var gens []Generator
	for core := 0; core < 2; core++ {
		var buf bytes.Buffer
		if err := RecordTrace(&buf, w, core, traceLen, rc.Seed); err != nil {
			t.Fatal(err)
		}
		g, err := OpenTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		gens = append(gens, g)
	}
	hints := []WorkloadParams{w.Params, w.Params}
	res, err := RunGenerators(cfg, gens, hints, rc)
	if err != nil {
		t.Fatal(err)
	}

	// Identical instruction streams through identical systems: results
	// must match exactly.
	if res.IPC != ref.IPC || res.Cycles != ref.Cycles || res.DRAM != ref.DRAM {
		t.Errorf("trace replay diverged from synthetic run:\n replay: IPC %.4f cycles %d\n direct: IPC %.4f cycles %d",
			res.IPC, res.Cycles, ref.IPC, ref.Cycles)
	}
	if res.Workload != "streamcluster" {
		t.Errorf("replay workload label %q", res.Workload)
	}
}

func TestRunGeneratorsValidation(t *testing.T) {
	w, _ := WorkloadByName("pop2")
	cfg := Baseline()
	cfg.ActiveCores = 2
	g := NewSyntheticGenerator(w.Params, 1<<40, 1)
	rc := RunConfig{WarmupInstr: 100, MeasureInstr: 500, Seed: 1, SkipFunctional: true}
	if _, err := RunGenerators(cfg, []Generator{g}, nil, rc); err == nil {
		t.Error("generator/core mismatch accepted")
	}
	if _, err := RunGenerators(cfg, []Generator{g, g}, []WorkloadParams{w.Params}, rc); err == nil {
		t.Error("hint/core mismatch accepted")
	}
}

func TestRecordTraceValidation(t *testing.T) {
	w, _ := WorkloadByName("pop2")
	var buf bytes.Buffer
	if err := RecordTrace(&buf, w, -1, 10, 1); err == nil {
		t.Error("negative core accepted")
	}
	if err := RecordTrace(&buf, w, 0, 10, 1); err != nil {
		t.Error(err)
	}
	if _, err := OpenTrace(bytes.NewReader([]byte("junk data here"))); err == nil {
		t.Error("junk trace accepted")
	}
}
