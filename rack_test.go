package coaxial_test

import (
	"context"
	"reflect"
	"testing"

	"coaxial"
	"coaxial/internal/rack"
	"coaxial/internal/sim"
)

func rackRC() coaxial.RunConfig {
	rc := coaxial.DefaultRunConfig()
	rc.FunctionalWarmupInstr = 50_000
	rc.WarmupInstr, rc.MeasureInstr = 5_000, 20_000
	return rc
}

// rateWorkloads assigns w to every core of every host of the rack.
func rateWorkloads(cfg coaxial.RackConfig, w coaxial.Workload) [][]coaxial.Workload {
	wls := make([][]coaxial.Workload, len(cfg.Hosts))
	for h, hc := range cfg.Hosts {
		n := hc.ActiveCores
		if n == 0 {
			n = hc.Cores
		}
		wls[h] = make([]coaxial.Workload, n)
		for i := range wls[h] {
			wls[h][i] = w
		}
	}
	return wls
}

// TestRackClockingEquivalence is the rack determinism pin: a 4-host
// pooled rack must be bit-identical across RackParallelism {1, 4} ×
// {event, cycle} clocking, and a 1-host rack must reproduce the
// equivalent single-System run (itself pinned by the golden tests)
// exactly.
func TestRackClockingEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("rack equivalence matrix in -short mode")
	}
	preset := coaxial.TopologyCoaxialPooled(4)
	wls := make([][]coaxial.Workload, len(preset.Rack.Hosts))
	for h := range wls {
		wls[h] = coaxial.RackMixWorkloads(h, 12)
	}
	base := rackRC()

	var ref coaxial.RackResult
	for i, v := range []struct {
		clocking coaxial.Clocking
		rackPar  int
	}{
		{coaxial.EventDriven, 1},
		{coaxial.EventDriven, 4},
		{coaxial.CycleByCycle, 1},
		{coaxial.CycleByCycle, 4},
	} {
		rc := base
		rc.Clocking = v.clocking
		rc.RackParallelism = v.rackPar
		rr, err := coaxial.NewRunner(coaxial.WithRunConfig(rc)).RunRack(context.Background(), preset.Rack, wls)
		if err != nil {
			t.Fatalf("clocking %v, rack-parallelism %d: %v", v.clocking, v.rackPar, err)
		}
		if i == 0 {
			ref = rr
			continue
		}
		if !reflect.DeepEqual(ref, rr) {
			t.Errorf("clocking %v, rack-parallelism %d diverges from reference:\nref: %+v\ngot: %+v",
				v.clocking, v.rackPar, ref, rr)
		}
	}

	// 1-host identity, through the Runner's warm-cached path on both sides.
	one := coaxial.TopologyCoaxialPooled(1)
	wl := coaxial.RackMixWorkloads(0, 12)
	r := coaxial.NewRunner(coaxial.WithRunConfig(base))
	single, err := r.RunMix(context.Background(), coaxial.CoaxialPooled(), wl)
	if err != nil {
		t.Fatalf("single-system run: %v", err)
	}
	rr, err := r.RunRack(context.Background(), one.Rack, [][]coaxial.Workload{wl})
	if err != nil {
		t.Fatalf("1-host rack run: %v", err)
	}
	if !reflect.DeepEqual(single, rr.Hosts[0]) {
		t.Errorf("1-host rack diverges from single system:\nsingle: %+v\nrack:   %+v", single, rr.Hosts[0])
	}
}

// TestRackPooledQueueMonotonic is the metamorphic rack law: adding a host
// to a contended pooled device never reduces that device's total
// queueing — the extra host can only add traffic to the shared queues.
func TestRackPooledQueueMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic rack law in -short mode")
	}
	w, err := coaxial.WorkloadByName("stream-triad")
	if err != nil {
		t.Fatal(err)
	}
	rc := rackRC()
	run := func(hosts int) coaxial.RackResult {
		t.Helper()
		cfg := coaxial.TopologyCoaxialPooled(hosts).Rack
		rr, err := coaxial.RunRack(cfg, rateWorkloads(cfg, w), rc)
		if err != nil {
			t.Fatalf("%d-host rack: %v", hosts, err)
		}
		return rr
	}
	one := run(1)
	two := run(2)
	if len(one.Devices) != len(two.Devices) {
		t.Fatalf("device count changed with host count: %d vs %d", len(one.Devices), len(two.Devices))
	}
	for i := range one.Devices {
		if q1, q2 := one.Devices[i].TotalQueueCycles, two.Devices[i].TotalQueueCycles; q2 < q1 {
			t.Errorf("device %s: total queueing dropped when adding a host: %d -> %d",
				one.Devices[i].Name, q1, q2)
		}
	}
	if two.FairnessIndex <= 0 || two.FairnessIndex > 1 {
		t.Errorf("fairness index %v outside (0, 1]", two.FairnessIndex)
	}
}

// TestTopologyPresetAliases pins the deprecated stringly-typed lookup to
// the typed constructors, and the single-host presets to the classic
// Config presets they wrap.
func TestTopologyPresetAliases(t *testing.T) {
	constructors := map[string]func() coaxial.TopologyPreset{
		"ddr-baseline":   coaxial.TopologyDDRBaseline,
		"coaxial-2x":     coaxial.TopologyCoaxial2x,
		"coaxial-4x":     coaxial.TopologyCoaxial4x,
		"coaxial-5x":     coaxial.TopologyCoaxial5x,
		"coaxial-asym":   coaxial.TopologyCoaxialAsym,
		"coaxial-pooled": func() coaxial.TopologyPreset { return coaxial.TopologyCoaxialPooled(1) },
	}
	configs := map[string]func() coaxial.Config{
		"ddr-baseline":   coaxial.Baseline,
		"coaxial-2x":     coaxial.Coaxial2x,
		"coaxial-4x":     coaxial.Coaxial4x,
		"coaxial-5x":     coaxial.Coaxial5x,
		"coaxial-asym":   coaxial.CoaxialAsym,
		"coaxial-pooled": coaxial.CoaxialPooled,
	}
	names := coaxial.TopologyNames()
	if len(names) != len(constructors) {
		t.Errorf("TopologyNames lists %d presets, have %d constructors", len(names), len(constructors))
	}
	for _, name := range names {
		mk, ok := constructors[name]
		if !ok {
			t.Errorf("preset %q has no typed constructor", name)
			continue
		}
		byName, err := coaxial.TopologyPresetByName(name)
		if err != nil {
			t.Errorf("lookup %q: %v", name, err)
			continue
		}
		if want := mk(); !reflect.DeepEqual(byName, want) {
			t.Errorf("preset %q: alias and constructor disagree:\nalias:       %+v\nconstructor: %+v", name, byName, want)
		}
		cfg, ok := byName.Single()
		if !ok {
			t.Errorf("preset %q is not a 1-host topology", name)
			continue
		}
		if want := configs[name](); !reflect.DeepEqual(cfg, want) {
			t.Errorf("preset %q: Single() diverges from the classic Config preset", name)
		}
	}
	if _, err := coaxial.TopologyPresetByName("no-such-topology"); err == nil {
		t.Error("unknown preset name did not error")
	}
}

// TestTopologyWithHosts checks the host-scaling combinator: hosts
// replicate, pooled devices stay shared, and names encode the scale.
func TestTopologyWithHosts(t *testing.T) {
	p := coaxial.TopologyCoaxialPooled(4)
	if len(p.Rack.Hosts) != 4 {
		t.Fatalf("got %d hosts, want 4", len(p.Rack.Hosts))
	}
	if want := "coaxial-pooled@4h"; p.Name != want || p.Rack.Name != want {
		t.Errorf("names %q / %q, want %q", p.Name, p.Rack.Name, want)
	}
	if one := coaxial.TopologyCoaxialPooled(1); len(one.Rack.Pooled) != len(p.Rack.Pooled) {
		t.Errorf("device count scales with hosts: %d vs %d", len(one.Rack.Pooled), len(p.Rack.Pooled))
	}
	if _, ok := p.Single(); ok {
		t.Error("4-host topology claims to be single-host")
	}
	back := p.WithHosts(1)
	if back.Name != "coaxial-pooled" || len(back.Rack.Hosts) != 1 {
		t.Errorf("WithHosts(1) did not restore the base preset: %+v", back)
	}
}

// TestRackWarmKeysDistinct checks satellite 3: warm-cache keys must not
// alias across host counts or host positions of rack topologies, nor
// against the plain single-host key.
func TestRackWarmKeysDistinct(t *testing.T) {
	host := coaxial.CoaxialPooled()
	wl := coaxial.RackMixWorkloads(0, 12)
	rc := coaxial.DefaultRunConfig()
	seen := map[string]string{"single": sim.WarmKey(host, wl, rc)}
	for _, hosts := range []int{1, 2, 4} {
		cfg := coaxial.TopologyCoaxialPooled(hosts).Rack
		for h := range cfg.Hosts {
			key := sim.WarmKey(host, wl, rack.HostRunConfig(rc, cfg, h))
			label := cfg.Name + "/" + string(rune('0'+h))
			if prev, dup := seen[key]; dup {
				t.Errorf("warm key aliases %s and %s", prev, label)
			}
			seen[key] = label
		}
	}
}

// TestRunSuiteRackJobs runs a mixed suite — one single-host job, one rack
// job — and checks the rack row is the flattened summary.
func TestRunSuiteRackJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("suite rack job in -short mode")
	}
	w, err := coaxial.WorkloadByName("stream-copy")
	if err != nil {
		t.Fatal(err)
	}
	rackCfg := coaxial.TopologyCoaxialPooled(2).Rack
	jobs := []coaxial.SuiteJob{
		{Config: coaxial.CoaxialPooled(), Workload: w},
		{Rack: &rackCfg, HostWorkloads: rateWorkloads(rackCfg, w)},
	}
	r := coaxial.NewRunner(coaxial.WithRunConfig(rackRC()))
	results, err := r.RunSuite(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Config != rackCfg.Name {
		t.Errorf("rack row config %q, want %q", results[1].Config, rackCfg.Name)
	}
	wantCores := 2 * len(results[0].PerCoreIPC)
	if len(results[1].PerCoreIPC) != wantCores {
		t.Errorf("rack row has %d per-core IPCs, want %d", len(results[1].PerCoreIPC), wantCores)
	}
	if results[1].IPC <= 0 || results[1].Retired == 0 {
		t.Errorf("rack summary row made no progress: %+v", results[1])
	}
}
