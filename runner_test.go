package coaxial_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"reflect"
	"strings"
	"testing"

	"coaxial"
)

// The Runner is the primary entry point: configure once with options, run
// many experiments. Runs sharing a warm key (same cache geometry,
// workloads, seed, and functional-warmup budget) reuse one warmed system
// state, and every method stops cleanly on context cancellation.
func ExampleRunner() {
	r := coaxial.NewRunner(
		coaxial.WithSeed(1),
		coaxial.WithWindows(50_000, 5_000, 20_000),
		coaxial.WithParallelism(2),
	)
	w, err := coaxial.WorkloadByName("stream-copy")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	base, _ := r.Run(ctx, coaxial.Baseline(), w)
	coax, _ := r.Run(ctx, coaxial.Coaxial4x(), w)
	if coaxial.Speedup(coax, base) > 1 {
		fmt.Println("COAXIAL wins on stream-copy")
	}
	// Output: COAXIAL wins on stream-copy
}

// TestRunnerMatchesLegacyRun pins the API-redesign contract: the Runner
// (warm-cached, context-aware) must produce bit-identical results to the
// original one-shot entry points, on repeated runs too (the second Run hits
// the warm cache).
func TestRunnerMatchesLegacyRun(t *testing.T) {
	w, err := coaxial.WorkloadByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	rc := coaxial.DefaultRunConfig()
	rc.FunctionalWarmupInstr = 40_000
	rc.WarmupInstr, rc.MeasureInstr = 2_000, 8_000

	legacy, err := coaxial.Run(coaxial.Coaxial4x(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	r := coaxial.NewRunner(coaxial.WithRunConfig(rc))
	for i := 0; i < 2; i++ {
		got, err := r.Run(context.Background(), coaxial.Coaxial4x(), w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, got) {
			t.Errorf("run %d: Runner diverges from legacy Run\nlegacy: %+v\nrunner: %+v", i, legacy, got)
		}
	}
}

// TestRunnerSuiteJoinsErrors checks Runner.RunSuite error aggregation: a
// failing job (zero measure window cannot happen per-job, so use a broken
// config) surfaces through errors.Join with the job annotation, while good
// jobs still return results.
func TestRunnerSuiteJoinsErrors(t *testing.T) {
	w, err := coaxial.WorkloadByName("pop2")
	if err != nil {
		t.Fatal(err)
	}
	bad := coaxial.Coaxial4x()
	bad.Channels = 0 // fails validation
	jobs := []coaxial.SuiteJob{
		{Config: coaxial.Coaxial4x(), Workload: w},
		{Config: bad, Workload: w},
	}
	r := coaxial.NewRunner(
		coaxial.WithWindows(10_000, 1_000, 4_000),
		coaxial.WithWorkers(2),
	)
	results, err := r.RunSuite(context.Background(), jobs)
	if err == nil {
		t.Fatal("expected an aggregated error for the broken job")
	}
	if results[0].IPC <= 0 {
		t.Errorf("good job should still produce a result: %+v", results[0])
	}
	if !strings.Contains(err.Error(), "job 1") {
		t.Errorf("error %q does not identify the failing job", err)
	}
}

// TestRunnerSuiteCancellation checks that a canceled context stops the
// suite: every job reports the cancellation cause through the joined error.
func TestRunnerSuiteCancellation(t *testing.T) {
	w, err := coaxial.WorkloadByName("pop2")
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]coaxial.SuiteJob, 4)
	for i := range jobs {
		jobs[i] = coaxial.SuiteJob{Config: coaxial.Coaxial4x(), Workload: w}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := coaxial.NewRunner(coaxial.WithWindows(10_000, 20_000, 20_000))
	_, err = r.RunSuite(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in joined error, got %v", err)
	}
}

// TestRunnerWithValidation runs the differential validation harness through
// the Runner's warm-cached path (cold capture on the first run, warm reuse
// on the second): zero violations on correct code, and bit-identical
// results to an unvalidated Runner.
func TestRunnerWithValidation(t *testing.T) {
	w, err := coaxial.WorkloadByName("stream-copy")
	if err != nil {
		t.Fatal(err)
	}
	windows := func() coaxial.RunnerOption { return coaxial.WithWindows(40_000, 1_000, 6_000) }
	plainRunner := coaxial.NewRunner(windows())
	plain, err := plainRunner.Run(context.Background(), coaxial.Coaxial4x(), w)
	if err != nil {
		t.Fatal(err)
	}
	r := coaxial.NewRunner(windows(), coaxial.WithValidation())
	for i := 0; i < 2; i++ {
		got, err := r.Run(context.Background(), coaxial.Coaxial4x(), w)
		if err != nil {
			t.Fatalf("run %d: validated run failed: %v", i, err)
		}
		if !reflect.DeepEqual(plain, got) {
			t.Errorf("run %d: validation perturbed the result\nplain:   %+v\nchecked: %+v", i, plain, got)
		}
	}
	// The rack workload goes through the same harness.
	if _, err := r.RunMix(context.Background(), coaxial.CoaxialPooled(), coaxial.RackMixWorkloads(0, 12)); err != nil {
		t.Fatalf("validated rack-mix run failed: %v", err)
	}
}

// TestRackMixWorkloads pins the rack generator's contract: a deterministic
// per-core assignment alternating bandwidth-hungry (high-MPKI) and
// latency-sensitive (low-MPKI) jobs.
func TestRackMixWorkloads(t *testing.T) {
	const cores = 12
	wl := coaxial.RackMixWorkloads(3, cores)
	if len(wl) != cores {
		t.Fatalf("got %d workloads, want %d", len(wl), cores)
	}
	for i, w := range wl {
		if i%2 == 0 && w.PaperMPKI < 25 {
			t.Errorf("slot %d: %s MPKI %.1f, want a high-MPKI (>= 25) batch job", i, w.Params.Name, w.PaperMPKI)
		}
		if i%2 == 1 && w.PaperMPKI > 12 {
			t.Errorf("slot %d: %s MPKI %.1f, want a low-MPKI (<= 12) service", i, w.Params.Name, w.PaperMPKI)
		}
	}
	if !reflect.DeepEqual(wl, coaxial.RackMixWorkloads(3, cores)) {
		t.Error("rack mix is not deterministic for a fixed index")
	}
	if reflect.DeepEqual(wl, coaxial.RackMixWorkloads(4, cores)) {
		t.Error("distinct rack indices produced identical assignments")
	}
}
