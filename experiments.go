package coaxial

import (
	"fmt"

	"coaxial/internal/area"
	"coaxial/internal/dram"
	"coaxial/internal/power"
	"coaxial/internal/sim"
	"coaxial/internal/stats"
	"coaxial/internal/trace"
)

// This file hosts the experiment drivers that regenerate each figure and
// table of the paper's evaluation (see DESIGN.md's experiment index).
// Each driver is self-contained: it runs the simulations it needs and
// returns typed rows; the rendering lives in report.go.

// PairRow is one workload's (baseline, variant) measurement pair.
type PairRow struct {
	Workload string
	Base     Result
	Coax     Result
	Speedup  float64
}

// MainResults runs the baseline and COAXIAL-4x across the given workloads
// (Fig. 5; its baseline side is also Fig. 2b and Fig. 9, and Table IV).
func MainResults(workloads []Workload, rc RunConfig) ([]PairRow, error) {
	return ComparePair(Baseline(), Coaxial4x(), workloads, rc)
}

// ComparePair runs two configurations across workloads and pairs results.
func ComparePair(base, variant Config, workloads []Workload, rc RunConfig) ([]PairRow, error) {
	jobs := make([]SuiteJob, 0, 2*len(workloads))
	for _, w := range workloads {
		jobs = append(jobs, SuiteJob{Config: base, Workload: w}, SuiteJob{Config: variant, Workload: w})
	}
	results, errs := RunSuite(jobs, rc)
	rows := make([]PairRow, 0, len(workloads))
	for i, w := range workloads {
		if errs[2*i] != nil {
			return nil, fmt.Errorf("%s on %s: %w", base.Name, w.Params.Name, errs[2*i])
		}
		if errs[2*i+1] != nil {
			return nil, fmt.Errorf("%s on %s: %w", variant.Name, w.Params.Name, errs[2*i+1])
		}
		b, c := results[2*i], results[2*i+1]
		rows = append(rows, PairRow{Workload: w.Params.Name, Base: b, Coax: c, Speedup: Speedup(c, b)})
	}
	return rows, nil
}

// MeanSpeedup returns the arithmetic mean speedup over rows (the paper's
// headline aggregation).
func MeanSpeedup(rows []PairRow) float64 {
	sp := make([]float64, len(rows))
	for i, r := range rows {
		sp[i] = r.Speedup
	}
	return stats.Mean(sp)
}

// GeomeanSpeedup returns the geometric mean speedup over rows.
func GeomeanSpeedup(rows []PairRow) float64 {
	sp := make([]float64, len(rows))
	for i, r := range rows {
		sp[i] = r.Speedup
	}
	return stats.Geomean(sp)
}

// LoadLatencyPoint re-exports the Fig. 2a sweep point.
type LoadLatencyPoint = sim.LoadLatencyPoint

// Fig2aLoadLatency sweeps a single DDR5-4800 channel's load-latency curve.
func Fig2aLoadLatency(utils []float64, warmup, requests int, seed uint64) ([]LoadLatencyPoint, error) {
	return sim.LoadLatencySweep(dram.DefaultConfig(), utils, warmup, requests, seed)
}

// MixRow is one Fig. 6 workload-mix measurement.
type MixRow struct {
	Mix      int
	Names    []string
	Base     Result
	Coax     Result
	Speedup  float64 // geometric mean of per-core IPC ratios
	MeanIPCx float64 // plain mean-IPC ratio, for reference
}

// Fig6Mixes evaluates n random 12-workload mixes on baseline vs
// COAXIAL-4x.
func Fig6Mixes(n int, rc RunConfig) ([]MixRow, error) {
	base, coax := Baseline(), Coaxial4x()
	rows := make([]MixRow, 0, n)
	for i := 0; i < n; i++ {
		wl := MixWorkloads(i, base.Cores)
		b, err := RunMix(base, wl, rc)
		if err != nil {
			return nil, fmt.Errorf("mix %d baseline: %w", i, err)
		}
		c, err := RunMix(coax, wl, rc)
		if err != nil {
			return nil, fmt.Errorf("mix %d coaxial: %w", i, err)
		}
		names := make([]string, len(wl))
		for j, w := range wl {
			names[j] = w.Params.Name
		}
		rows = append(rows, MixRow{
			Mix: i, Names: names, Base: b, Coax: c,
			Speedup:  PerCoreSpeedupGeomean(c, b),
			MeanIPCx: Speedup(c, b),
		})
	}
	return rows, nil
}

// CALMVariant names one Fig. 7 mechanism.
type CALMVariant struct {
	Label string
	Cfg   CALMConfig
}

// Fig7Variants returns the mechanisms of the Fig. 7 sensitivity study.
func Fig7Variants() []CALMVariant {
	return []CALMVariant{
		{Label: "serial", Cfg: CALMConfig{Kind: CALMOff}},
		{Label: "map-i", Cfg: CALMConfig{Kind: CALMMAPI}},
		{Label: "calm-50", Cfg: CALMR(0.50)},
		{Label: "calm-60", Cfg: CALMR(0.60)},
		{Label: "calm-70", Cfg: CALMR(0.70)},
		{Label: "ideal", Cfg: CALMConfig{Kind: CALMIdeal}},
	}
}

// Fig7Row is one workload's CALM sensitivity results: speedup of every
// (system, mechanism) pair over the serial baseline, plus decision tallies
// on the COAXIAL side (Fig. 7b).
type Fig7Row struct {
	Workload string
	// BaseSpeedup/CoaxSpeedup are keyed by Fig7Variants order.
	BaseSpeedup []float64
	CoaxSpeedup []float64
	// CoaxDecisions per variant (Fig. 7b).
	CoaxDecisions []CALMDecisions
}

// Fig7CALM runs the CALM mechanism study on the given workloads.
func Fig7CALM(workloads []Workload, rc RunConfig) ([]Fig7Row, error) {
	variants := Fig7Variants()
	rows := make([]Fig7Row, 0, len(workloads))
	for _, w := range workloads {
		row := Fig7Row{Workload: w.Params.Name}
		serialBase, err := Run(Baseline().WithCALM(variants[0].Cfg), w, rc)
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			b, err := Run(Baseline().WithCALM(v.Cfg), w, rc)
			if err != nil {
				return nil, err
			}
			c, err := Run(Coaxial4x().WithCALM(v.Cfg), w, rc)
			if err != nil {
				return nil, err
			}
			row.BaseSpeedup = append(row.BaseSpeedup, Speedup(b, serialBase))
			row.CoaxSpeedup = append(row.CoaxSpeedup, Speedup(c, serialBase))
			row.CoaxDecisions = append(row.CoaxDecisions, c.CALM)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig8Row compares the alternative COAXIAL designs for one workload.
type Fig8Row struct {
	Workload string
	Speedup2 float64 // COAXIAL-2x over baseline
	Speedup4 float64 // COAXIAL-4x over baseline
	SpeedupA float64 // COAXIAL-asym over baseline
}

// Fig8Configs evaluates COAXIAL-2x/-4x/-asym against the baseline.
func Fig8Configs(workloads []Workload, rc RunConfig) ([]Fig8Row, error) {
	cfgs := []Config{Baseline(), Coaxial2x(), Coaxial4x(), CoaxialAsym()}
	jobs := make([]SuiteJob, 0, len(cfgs)*len(workloads))
	for _, w := range workloads {
		for _, c := range cfgs {
			jobs = append(jobs, SuiteJob{Config: c, Workload: w})
		}
	}
	results, errs := RunSuite(jobs, rc)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rows := make([]Fig8Row, 0, len(workloads))
	for i, w := range workloads {
		base := results[i*len(cfgs)]
		rows = append(rows, Fig8Row{
			Workload: w.Params.Name,
			Speedup2: Speedup(results[i*len(cfgs)+1], base),
			Speedup4: Speedup(results[i*len(cfgs)+2], base),
			SpeedupA: Speedup(results[i*len(cfgs)+3], base),
		})
	}
	return rows, nil
}

// Fig10Row is the CXL latency-premium sensitivity for one workload.
type Fig10Row struct {
	Workload  string
	Speedup50 float64 // 50 ns premium (default)
	Speedup70 float64 // 70 ns premium (pessimistic)
	Speedup10 float64 // 10 ns OMI-class premium (§VII)
}

// Fig10LatencySensitivity evaluates COAXIAL-4x at 50/70/10 ns premiums.
func Fig10LatencySensitivity(workloads []Workload, rc RunConfig) ([]Fig10Row, error) {
	cfgs := []Config{
		Baseline(),
		Coaxial4x(),                     // 4 x 12.5 = 50 ns
		Coaxial4x().WithCXLPortNS(17.5), // 70 ns
		Coaxial4x().WithCXLPortNS(2.5),  // 10 ns
	}
	jobs := make([]SuiteJob, 0, len(cfgs)*len(workloads))
	for _, w := range workloads {
		for _, c := range cfgs {
			jobs = append(jobs, SuiteJob{Config: c, Workload: w})
		}
	}
	results, errs := RunSuite(jobs, rc)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rows := make([]Fig10Row, 0, len(workloads))
	for i, w := range workloads {
		base := results[i*len(cfgs)]
		rows = append(rows, Fig10Row{
			Workload:  w.Params.Name,
			Speedup50: Speedup(results[i*len(cfgs)+1], base),
			Speedup70: Speedup(results[i*len(cfgs)+2], base),
			Speedup10: Speedup(results[i*len(cfgs)+3], base),
		})
	}
	return rows, nil
}

// Fig11Row is the core-utilization sensitivity for one workload: COAXIAL
// speedup with 1, 4, 8, and 12 active cores, each normalized to the
// baseline at the same active-core count.
type Fig11Row struct {
	Workload string
	Speedups [4]float64 // active cores: 1, 4, 8, 12
}

// Fig11ActiveCores returns the core counts evaluated.
func Fig11ActiveCores() [4]int { return [4]int{1, 4, 8, 12} }

// Fig11Utilization runs the utilization sensitivity study.
func Fig11Utilization(workloads []Workload, rc RunConfig) ([]Fig11Row, error) {
	counts := Fig11ActiveCores()
	rows := make([]Fig11Row, 0, len(workloads))
	for _, w := range workloads {
		var row Fig11Row
		row.Workload = w.Params.Name
		for ci, n := range counts {
			b, err := Run(Baseline().WithActiveCores(n), w, rc)
			if err != nil {
				return nil, err
			}
			c, err := Run(Coaxial4x().WithActiveCores(n), w, rc)
			if err != nil {
				return nil, err
			}
			row.Speedups[ci] = Speedup(c, b)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// TableVRow is one Table V column (a system's power ledger and efficiency
// metrics at measured CPI and utilization).
type TableVRow struct {
	System  string
	Ledger  power.Ledger
	Metrics power.Metrics
}

// TableVPower evaluates the energy model using suite-average CPI and
// per-channel utilization measured from rows (a MainResults run).
func TableVPower(rows []PairRow) (baseline, coaxial TableVRow) {
	var baseCPI, coaxCPI, baseUtil, coaxUtil []float64
	for _, r := range rows {
		baseCPI = append(baseCPI, r.Base.CPI)
		coaxCPI = append(coaxCPI, r.Coax.CPI)
		baseUtil = append(baseUtil, r.Base.Utilization)
		coaxUtil = append(coaxUtil, r.Coax.Utilization)
	}
	bSpec, cSpec := power.Baseline144(), power.Coaxial144()
	bl := power.Compute(bSpec, stats.Mean(baseUtil))
	cl := power.Compute(cSpec, stats.Mean(coaxUtil))
	bm := power.Evaluate(bl, stats.Mean(baseCPI))
	cm := power.Evaluate(cl, stats.Mean(coaxCPI))
	cm = power.Compare(cm, bm)
	bm = power.Compare(bm, bm)
	return TableVRow{System: bSpec.Name, Ledger: bl, Metrics: bm},
		TableVRow{System: cSpec.Name, Ledger: cl, Metrics: cm}
}

// AreaConfig re-exports the Table II derivation row.
type AreaConfig = area.ServerConfig

// TableIIConfigs returns the configuration space with derived relative
// bandwidth, area, and pin budgets.
func TableIIConfigs() []AreaConfig { return area.TableII() }

// Fig1BandwidthPerPin returns the interface bandwidth-per-pin series
// normalized to PCIe 1.0.
func Fig1BandwidthPerPin() map[string]float64 { return area.NormalizedToPCIe1() }

// RepresentativeWorkloads returns a small cross-suite subset used where a
// full 36-workload sweep is too slow (benches, quick reports): the paper's
// Fig. 7 uses a similar representative set.
func RepresentativeWorkloads() []Workload {
	names := []string{"lbm", "gcc", "Components", "stream-copy", "kmeans", "canneal"}
	out := make([]Workload, 0, len(names))
	for _, n := range names {
		w, err := trace.WorkloadByName(n)
		if err != nil {
			panic(err) // static list; cannot fail
		}
		out = append(out, w)
	}
	return out
}
