package coaxial

import (
	"fmt"
	"io"
	"sort"

	"coaxial/internal/area"
	"coaxial/internal/stats"
)

// This file renders experiment rows as the text equivalents of the paper's
// figures and tables (same rows/series; values are this simulator's).

// ReportFig1 prints the bandwidth-per-pin series (Fig. 1).
func ReportFig1(w io.Writer) {
	fmt.Fprintln(w, "Fig. 1: interface bandwidth per processor pin (normalized to PCIe-1.0)")
	series := area.Fig1Series()
	norm := Fig1BandwidthPerPin()
	sort.Slice(series, func(i, j int) bool { return series[i].Year < series[j].Year })
	for _, g := range series {
		kind := "DDR "
		if g.IsPCIe {
			kind = "PCIe"
		}
		fmt.Fprintf(w, "  %-11s %s %4d  %8.4f GB/s/pin  %7.2fx\n",
			g.Name, kind, g.Year, g.GBsPerPin, norm[g.Name])
	}
	fmt.Fprintf(w, "  current PCIe5-vs-DDR5 gap: %.1fx\n", area.BandwidthPerPinGap())
}

// ReportFig2a prints the load-latency curve (Fig. 2a).
func ReportFig2a(w io.Writer, pts []LoadLatencyPoint) {
	fmt.Fprintln(w, "Fig. 2a: DDR5-4800 channel load-latency curve (random reads)")
	fmt.Fprintf(w, "  %8s %12s %10s %10s %10s\n", "util", "achieved", "mean", "p90", "p99")
	for _, p := range pts {
		fmt.Fprintf(w, "  %7.0f%% %9.1fGB/s %8.0fns %8.0fns %8.0fns\n",
			p.TargetUtil*100, p.AchievedGBs, p.MeanNS, p.P90NS, p.P99NS)
	}
}

// ReportFig2b prints the baseline latency breakdown and utilization
// (Fig. 2b) from MainResults rows.
func ReportFig2b(w io.Writer, rows []PairRow) {
	fmt.Fprintln(w, "Fig. 2b: baseline L2-miss latency breakdown and bandwidth utilization")
	fmt.Fprintf(w, "  %-15s %8s %8s %8s %8s %7s %7s\n",
		"workload", "onchip", "queue", "dram", "total", "util%", "q-share")
	var qshare []float64
	for _, r := range rows {
		b := r.Base
		qs := 0.0
		if b.TotalNS > 0 {
			qs = b.QueueNS / b.TotalNS
		}
		qshare = append(qshare, qs)
		fmt.Fprintf(w, "  %-15s %6.0fns %6.0fns %6.0fns %6.0fns %6.0f%% %6.0f%%\n",
			r.Workload, b.OnChipNS, b.QueueNS, b.ServiceNS, b.TotalNS, b.Utilization*100, qs*100)
	}
	fmt.Fprintf(w, "  mean queuing share of L2-miss latency: %.0f%% (paper: 60%%)\n",
		stats.Mean(qshare)*100)
}

// ReportTableI prints the relative-area inputs (Table I).
func ReportTableI(w io.Writer) {
	fmt.Fprintln(w, "Table I: component areas relative to 1 MB of LLC")
	fmt.Fprintf(w, "  %-32s %5.1f\n", "L3 cache (1MB)", area.LLCPerMB)
	fmt.Fprintf(w, "  %-32s %5.1f\n", "Zen 3 core (incl. 512 KB L2)", area.Zen3Core)
	fmt.Fprintf(w, "  %-32s %5.1f\n", "x8 PCIe (PHY + ctrl)", area.PCIeX8)
	fmt.Fprintf(w, "  %-32s %5.1f\n", "DDR channel (PHY + ctrl)", area.DDRChannel)
}

// ReportTableII prints the derived configuration space (Table II).
func ReportTableII(w io.Writer) {
	fmt.Fprintln(w, "Table II: DDR-based versus COAXIAL server configurations (144 cores)")
	fmt.Fprintf(w, "  %-13s %6s %9s %12s %8s %8s  %s\n",
		"design", "LLC/c", "mem if", "mem pins", "rel BW", "rel area", "comment")
	for _, c := range TableIIConfigs() {
		ifdesc := fmt.Sprintf("%d DDR", c.DDRChannels)
		if c.CXLChannels > 0 {
			ifdesc = fmt.Sprintf("%d x8 CXL", c.CXLChannels)
		}
		fmt.Fprintf(w, "  %-13s %4.0fMB %9s %12d %7.1fx %8.2f  %s\n",
			c.Name, c.LLCPerCore, ifdesc, c.MemoryPins(), c.RelativeMemBW(), c.RelativeArea(), c.Comment)
	}
}

// ReportTableIII prints the simulated system parameters (Table III).
func ReportTableIII(w io.Writer) {
	fmt.Fprintln(w, "Table III: simulated system parameters")
	base, coax := Baseline(), Coaxial4x()
	fmt.Fprintf(w, "  %-8s %s\n", "CPU", "12 OoO cores, 2.4 GHz, 4-wide, 256-entry ROB")
	fmt.Fprintf(w, "  %-8s 32KB L1-D, %d-way, 64B blocks, %d-cycle hit (L1-I not simulated)\n",
		"L1", base.L1.Assoc, base.L1.LatencyCycles)
	fmt.Fprintf(w, "  %-8s %dKB, %d-way, %d-cycle hit\n",
		"L2", base.L2.SizeBytes>>10, base.L2.Assoc, base.L2.LatencyCycles)
	fmt.Fprintf(w, "  %-8s distributed shared, %d-way, %d-cycle hit; %dMB/core baseline, %dMB/core COAXIAL-4x\n",
		"LLC", base.LLCAssoc, base.LLCLatency, base.LLCSliceBytes>>20, coax.LLCSliceBytes>>20)
	fmt.Fprintf(w, "  %-8s DDR5-4800, %d sub-channels/channel, 1 rank/sub-channel, %d banks/rank\n",
		"Memory", base.DDR.SubChannels, base.DDR.Banks())
	fmt.Fprintf(w, "  %-8s baseline: %d channel; COAXIAL: 2-5 CXL channels (8 DDR channels for -asym)\n",
		"", base.Channels)
	fmt.Fprintf(w, "  %-8s %dx%d mesh, %d cycles/hop\n", "NoC", base.Mesh.W, base.Mesh.H, base.Mesh.HopCycles)
	fmt.Fprintf(w, "  %-8s %d per core; fill pipeline %d cycles\n", "MSHRs", base.MSHRs, base.FillLatency)
}

// ReportTableIV prints the baseline workload characterization (Table IV).
func ReportTableIV(w io.Writer, rows []PairRow, workloads []Workload) {
	fmt.Fprintln(w, "Table IV: workload IPC and LLC MPKI on the DDR baseline (measured vs paper)")
	fmt.Fprintf(w, "  %-15s %7s %7s %8s %8s\n", "workload", "IPC", "paper", "MPKI", "paper")
	byName := map[string]Workload{}
	for _, wl := range workloads {
		byName[wl.Params.Name] = wl
	}
	for _, r := range rows {
		ref := byName[r.Workload]
		fmt.Fprintf(w, "  %-15s %7.2f %7.2f %8.1f %8.1f\n",
			r.Workload, r.Base.IPC, ref.PaperIPC, r.Base.LLCMPKI, ref.PaperMPKI)
	}
}

// ReportFig5 prints the main results (Fig. 5): speedups, latency
// breakdowns, and bandwidth usage for baseline vs COAXIAL-4x.
func ReportFig5(w io.Writer, rows []PairRow) {
	fmt.Fprintln(w, "Fig. 5: COAXIAL-4x vs DDR baseline")
	fmt.Fprintf(w, "  %-15s %7s | %28s | %28s | %9s %9s\n",
		"workload", "speedup", "base lat (on/q/dram tot)", "coax lat (on/q/dram/cxl tot)", "base util", "coax util")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-15s %6.2fx | %4.0f/%4.0f/%3.0f %5.0fns         | %3.0f/%4.0f/%3.0f/%3.0f %5.0fns      | %8.0f%% %8.0f%%\n",
			r.Workload, r.Speedup,
			r.Base.OnChipNS, r.Base.QueueNS, r.Base.ServiceNS, r.Base.TotalNS,
			r.Coax.OnChipNS, r.Coax.QueueNS, r.Coax.ServiceNS, r.Coax.CXLNS, r.Coax.TotalNS,
			r.Base.Utilization*100, r.Coax.Utilization*100)
	}
	fmt.Fprintf(w, "  mean speedup %.2fx (geomean %.2fx); paper: 1.39x\n",
		MeanSpeedup(rows), GeomeanSpeedup(rows))
}

// ReportFig6 prints the workload-mix results (Fig. 6).
func ReportFig6(w io.Writer, rows []MixRow) {
	fmt.Fprintln(w, "Fig. 6: COAXIAL speedup on random 12-workload mixes")
	var sp []float64
	for _, r := range rows {
		sp = append(sp, r.Speedup)
		fmt.Fprintf(w, "  mix%-2d %6.2fx (mean-IPC ratio %.2fx)\n", r.Mix, r.Speedup, r.MeanIPCx)
	}
	fmt.Fprintf(w, "  min/max/geomean: %.2fx / %.2fx / %.2fx (paper: 1.5/1.9/1.7)\n",
		minOf(sp), maxOf(sp), stats.Geomean(sp))
}

// ReportFig7 prints the CALM sensitivity study (Fig. 7a and 7b).
func ReportFig7(w io.Writer, rows []Fig7Row) {
	variants := Fig7Variants()
	fmt.Fprintln(w, "Fig. 7a: speedup over serial baseline, per CALM mechanism")
	fmt.Fprintf(w, "  %-15s |", "workload")
	for _, v := range variants {
		fmt.Fprintf(w, " %8s", v.Label)
	}
	fmt.Fprintf(w, " | %8s", "system")
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-15s |", r.Workload)
		for _, s := range r.BaseSpeedup {
			fmt.Fprintf(w, " %7.2fx", s)
		}
		fmt.Fprintln(w, " | baseline")
		fmt.Fprintf(w, "  %-15s |", "")
		for _, s := range r.CoaxSpeedup {
			fmt.Fprintf(w, " %7.2fx", s)
		}
		fmt.Fprintln(w, " | coaxial")
	}
	fmt.Fprintln(w, "Fig. 7b: CALM decision mix on COAXIAL (FP% of memory accesses, FN% of LLC misses)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-15s |", r.Workload)
		for _, d := range r.CoaxDecisions {
			fmt.Fprintf(w, " %3.0f/%-3.0f", d.FPRate()*100, d.FNRate()*100)
		}
		fmt.Fprintln(w)
	}
}

// ReportFig8 prints the alternative-design comparison (Fig. 8).
func ReportFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintln(w, "Fig. 8: COAXIAL design variants, speedup over DDR baseline")
	fmt.Fprintf(w, "  %-15s %8s %8s %8s\n", "workload", "2x", "4x", "asym")
	var s2, s4, sa []float64
	for _, r := range rows {
		s2 = append(s2, r.Speedup2)
		s4 = append(s4, r.Speedup4)
		sa = append(sa, r.SpeedupA)
		fmt.Fprintf(w, "  %-15s %7.2fx %7.2fx %7.2fx\n", r.Workload, r.Speedup2, r.Speedup4, r.SpeedupA)
	}
	fmt.Fprintf(w, "  mean: %.2fx / %.2fx / %.2fx (paper: 1.17 / 1.39 / 1.52)\n",
		stats.Mean(s2), stats.Mean(s4), stats.Mean(sa))
}

// ReportFig9 prints the baseline read/write bandwidth split (Fig. 9).
func ReportFig9(w io.Writer, rows []PairRow) {
	fmt.Fprintln(w, "Fig. 9: baseline read vs write bandwidth")
	fmt.Fprintf(w, "  %-15s %9s %9s %7s\n", "workload", "read", "write", "R:W")
	var ratios []float64
	for _, r := range rows {
		rw := 0.0
		if r.Base.WriteGBs > 0 {
			rw = r.Base.ReadGBs / r.Base.WriteGBs
		}
		ratios = append(ratios, rw)
		fmt.Fprintf(w, "  %-15s %6.1fGB/s %6.1fGB/s %6.1f\n", r.Workload, r.Base.ReadGBs, r.Base.WriteGBs, rw)
	}
	fmt.Fprintf(w, "  mean R:W = %.1f:1 (paper: 3.7:1)\n", stats.Mean(ratios))
}

// ReportFig10 prints the latency-premium sensitivity (Fig. 10, plus the
// §VII 10 ns OMI-class projection).
func ReportFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintln(w, "Fig. 10: COAXIAL speedup vs CXL latency premium")
	fmt.Fprintf(w, "  %-15s %8s %8s %8s\n", "workload", "50ns", "70ns", "10ns")
	var s50, s70, s10 []float64
	for _, r := range rows {
		s50 = append(s50, r.Speedup50)
		s70 = append(s70, r.Speedup70)
		s10 = append(s10, r.Speedup10)
		fmt.Fprintf(w, "  %-15s %7.2fx %7.2fx %7.2fx\n", r.Workload, r.Speedup50, r.Speedup70, r.Speedup10)
	}
	fmt.Fprintf(w, "  mean: %.2fx / %.2fx / %.2fx (paper: 1.39 / 1.26 / 1.71)\n",
		stats.Mean(s50), stats.Mean(s70), stats.Mean(s10))
}

// ReportFig11 prints the core-utilization sensitivity (Fig. 11).
func ReportFig11(w io.Writer, rows []Fig11Row) {
	counts := Fig11ActiveCores()
	fmt.Fprintln(w, "Fig. 11: COAXIAL speedup vs active cores (normalized per count)")
	fmt.Fprintf(w, "  %-15s", "workload")
	for _, n := range counts {
		fmt.Fprintf(w, " %6dc", n)
	}
	fmt.Fprintln(w)
	means := make([]float64, len(counts))
	for _, r := range rows {
		fmt.Fprintf(w, "  %-15s", r.Workload)
		for i, s := range r.Speedups {
			means[i] += s / float64(len(rows))
			fmt.Fprintf(w, " %6.2fx", s)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  %-15s", "mean")
	for _, m := range means {
		fmt.Fprintf(w, " %6.2fx", m)
	}
	fmt.Fprintln(w, "  (paper: 0.73 / ~1.0 / 1.17 / 1.39)")
}

// ReportTableV prints the power/efficiency comparison (Table V).
func ReportTableV(w io.Writer, base, coax TableVRow) {
	fmt.Fprintln(w, "Table V: energy/power comparison, scaled to the 144-core server")
	fmt.Fprintf(w, "  %-38s %10s %10s\n", "component", base.System, coax.System)
	row := func(name string, b, c float64) {
		fmt.Fprintf(w, "  %-38s %9.0fW %9.0fW\n", name, b, c)
	}
	row("cores + L1 + L2", base.Ledger.CommonW, coax.Ledger.CommonW)
	row("DDR5 MC & PHY", base.Ledger.DDRInterfaceW, coax.Ledger.DDRInterfaceW)
	row("LLC (leakage + access)", base.Ledger.LLCW, coax.Ledger.LLCW)
	row("CXL interface", base.Ledger.CXLInterfaceW, coax.Ledger.CXLInterfaceW)
	row("DDR5 DIMMs", base.Ledger.DIMMW, coax.Ledger.DIMMW)
	row("total", base.Ledger.TotalW(), coax.Ledger.TotalW())
	fmt.Fprintf(w, "  %-38s %10.2f %10.2f\n", "average CPI", base.Metrics.CPI, coax.Metrics.CPI)
	fmt.Fprintf(w, "  %-38s %10.2f %10.2f\n", "relative perf/W", base.Metrics.RelPerfW, coax.Metrics.RelPerfW)
	fmt.Fprintf(w, "  %-38s %10.0f %6.0f (%.2fx)\n", "EDP (lower is better)", base.Metrics.EDP, coax.Metrics.EDP, coax.Metrics.RelEDP)
	fmt.Fprintf(w, "  %-38s %10.0f %6.0f (%.2fx)\n", "ED2P (lower is better)", base.Metrics.ED2P, coax.Metrics.ED2P, coax.Metrics.RelED2P)
	fmt.Fprintln(w, "  paper: EDP 0.75x, ED2P 0.53x, perf/W 0.96")
}

func minOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
