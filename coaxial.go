// Package coaxial is a simulation library reproducing "COAXIAL: A
// CXL-Centric Memory System for Scalable Servers" (SC 2024): a manycore
// server whose processor attaches *all* memory over pin-efficient CXL
// channels instead of DDR, trading interface latency for a large memory
// bandwidth boost that shrinks queuing delays, plus the CALM mechanism that
// overlaps LLC and memory access.
//
// The package exposes the simulated systems (DDR baseline and the COAXIAL
// variants of Table II), the paper's 36 synthetic workloads (Table IV), the
// experiment drivers regenerating every figure and table of the evaluation,
// and the silicon-area and power models.
//
// Quick start:
//
//	w, _ := coaxial.WorkloadByName("stream-copy")
//	base, _ := coaxial.Run(coaxial.Baseline(), w, coaxial.DefaultRunConfig())
//	coax, _ := coaxial.Run(coaxial.Coaxial4x(), w, coaxial.DefaultRunConfig())
//	fmt.Printf("speedup: %.2fx\n", coax.IPC/base.IPC)
package coaxial

import (
	"context"
	"math"

	"coaxial/internal/calm"
	"coaxial/internal/power"
	"coaxial/internal/sim"
	"coaxial/internal/stats"
	"coaxial/internal/trace"
)

// Core simulation types, re-exported from the engine.
type (
	// Config describes one simulated system (Table III).
	Config = sim.Config
	// RunConfig controls warmup and measurement windows.
	RunConfig = sim.RunConfig
	// Result carries one experiment's measurements.
	Result = sim.Result
	// Workload couples generator parameters with the paper's published
	// baseline numbers.
	Workload = trace.Workload
	// WorkloadParams are the synthetic generator knobs.
	WorkloadParams = trace.Params
	// CALMConfig selects a concurrent LLC/memory access mechanism.
	CALMConfig = calm.Config
	// CALMDecisions tallies CALM outcomes (Fig. 7b).
	CALMDecisions = calm.Decisions
	// Clocking selects the simulator's main-loop time advance
	// (RunConfig.Clocking).
	Clocking = sim.Clocking
	// Progress is one per-window phase-progress observation delivered to
	// RunConfig.OnProgress / WithProgress observers.
	Progress = sim.Progress
)

// Clocking modes. EventDriven (the default) fast-forwards over dead cycles
// and is bit-identical to the CycleByCycle reference loop.
const (
	EventDriven  = sim.EventDriven
	CycleByCycle = sim.CycleByCycle
)

// CALM mechanism kinds (§IV-C).
const (
	CALMOff       = calm.Off
	CALMRegulated = calm.Regulated
	CALMMAPI      = calm.MAPI
	CALMIdeal     = calm.Ideal
)

// System presets (Table II / Table III).
var (
	// Baseline is the DDR-based server: 12 cores, one DDR5-4800 channel,
	// 2 MB LLC/core.
	Baseline = sim.Baseline
	// Coaxial2x doubles memory bandwidth over CXL at iso-LLC.
	Coaxial2x = sim.Coaxial2x
	// Coaxial4x is the default COAXIAL: 4x bandwidth, LLC halved.
	Coaxial4x = sim.Coaxial4x
	// Coaxial5x is the iso-pin variant (more die area).
	Coaxial5x = sim.Coaxial5x
	// CoaxialAsym provisions CXL lanes asymmetrically (20RX/12TX) with
	// two DDR channels per device (§IV-D).
	CoaxialAsym = sim.CoaxialAsym
	// CoaxialPooled is the CXL-pooled rack variant: 2 CXL channels, each
	// fronting a two-DDR-channel pool device with a deeper ingress queue.
	CoaxialPooled = sim.CoaxialPooled
)

// ValidationError is the aggregated report returned by validation-enabled
// runs (WithValidation / RunConfig.Validate) that observed DDR timing or
// request-lifecycle invariant violations. The accompanying Result is still
// complete.
type ValidationError = sim.ValidationError

// DefaultRunConfig returns the standard experiment windows.
func DefaultRunConfig() RunConfig { return sim.DefaultRunConfig() }

// DefaultCALM returns the paper's default mechanism, CALM_70%.
func DefaultCALM() CALMConfig { return calm.Default() }

// CALMR returns the bandwidth-regulated mechanism at threshold r (0..1).
func CALMR(r float64) CALMConfig { return CALMConfig{Kind: calm.Regulated, R: r} }

// Workloads returns the full 36-workload suite (Table IV order).
func Workloads() []Workload { return trace.Workloads() }

// WorkloadByName looks up one workload.
func WorkloadByName(name string) (Workload, error) { return trace.WorkloadByName(name) }

// WorkloadNames returns the suite's names in Table IV order.
func WorkloadNames() []string { return trace.Names() }

// MixWorkloads returns the per-core assignment of workload mix idx
// (Fig. 6; deterministic sampling with replacement).
func MixWorkloads(idx, cores int) []Workload { return trace.Mix(idx, cores) }

// RackMixWorkloads returns the per-core assignment of mixed-MPKI rack mix
// idx: even core slots draw bandwidth-hungry high-MPKI workloads, odd
// slots latency-sensitive low-MPKI ones, modeling a consolidated server
// where batch jobs and foreground services share the machine.
func RackMixWorkloads(idx, cores int) []Workload { return trace.RackMix(idx, cores) }

// Run executes one experiment: the system running the same workload on
// every active core (the paper's rate mode). It is a thin wrapper over
// Runner.Run — one-shot callers get the same warm-reuse path as suites,
// bit-identical to a cold start by construction.
func Run(cfg Config, w Workload, rc RunConfig) (Result, error) {
	return NewRunner(WithRunConfig(rc)).Run(context.Background(), cfg, w)
}

// RunMix executes one experiment with per-core workloads. Thin wrapper
// over Runner.RunMix.
func RunMix(cfg Config, workloads []Workload, rc RunConfig) (Result, error) {
	return NewRunner(WithRunConfig(rc)).RunMix(context.Background(), cfg, workloads)
}

// RunRack executes one rack-scale experiment (see Runner.RunRack):
// workloads[h] feeds host h, one entry per active core.
func RunRack(cfg RackConfig, workloads [][]Workload, rc RunConfig) (RackResult, error) {
	return NewRunner(WithRunConfig(rc)).RunRack(context.Background(), cfg, workloads)
}

// SuiteJob names one experiment for RunSuite: a (config, workload)
// single-system run, or — when Rack is non-nil — a whole rack topology
// fed by HostWorkloads. Rack jobs report through the same []Result slot
// as single-host jobs via RackResult.Summary (per-core IPCs concatenated
// across hosts, traffic summed); callers needing per-device detail run
// Runner.RunRack directly.
type SuiteJob struct {
	Config   Config
	Workload Workload

	// Rack, when non-nil, makes this a rack job; Config and Workload are
	// ignored in favor of the topology and HostWorkloads.
	Rack *RackConfig
	// HostWorkloads assigns rack workloads: HostWorkloads[h] feeds host h,
	// one entry per active core.
	HostWorkloads [][]Workload
}

// RunSuite executes jobs across rc.Workers workers (GOMAXPROCS when zero),
// preserving order. Errors are returned per job. It is a thin wrapper over
// Runner.RunSuite (which additionally supports cancellation and aggregates
// errors with errors.Join).
func RunSuite(jobs []SuiteJob, rc RunConfig) ([]Result, []error) {
	return NewRunner(WithRunConfig(rc)).runSuite(context.Background(), jobs)
}

// Speedup returns the normalized-IPC improvement of res over base.
func Speedup(res, base Result) float64 {
	if base.IPC <= 0 {
		return 0
	}
	return res.IPC / base.IPC
}

// PerCoreSpeedupGeomean returns the geometric mean of per-core IPC ratios
// (the mixed-workload speedup metric of Fig. 6).
func PerCoreSpeedupGeomean(res, base Result) float64 {
	n := len(res.PerCoreIPC)
	if n == 0 || n != len(base.PerCoreIPC) {
		return 0
	}
	prodLog := 0.0
	for i := 0; i < n; i++ {
		if base.PerCoreIPC[i] <= 0 || res.PerCoreIPC[i] <= 0 {
			return 0
		}
		prodLog += math.Log(res.PerCoreIPC[i] / base.PerCoreIPC[i])
	}
	return math.Exp(prodLog / float64(n))
}

// DRAMEnergy re-exports the counter-based DRAM energy integration.
type DRAMEnergy = power.DRAMEnergy

// DRAMEnergyOf integrates DRAM energy over a result's measured window from
// its activity counters (first-principles complement to the Table V
// utilization fit).
func DRAMEnergyOf(r Result) DRAMEnergy {
	// One sub-channel = 19.2 GB/s and 32 banks; the peak encodes how many
	// sub-channels the system had.
	subs := int(r.PeakGBs/19.2 + 0.5)
	if subs < 1 {
		subs = 1
	}
	return power.IntegrateDRAM(r.DRAM, r.Cycles, subs*32)
}

// SeedStats aggregates one experiment across several seeds.
type SeedStats struct {
	// MeanIPC and StdIPC summarize the per-seed mean-IPC distribution.
	MeanIPC float64
	StdIPC  float64
	// Results holds the per-seed measurements (seed = 1..n).
	Results []Result
}

// RunSeeds repeats one experiment across n seeds and reports the IPC
// distribution, quantifying run-to-run variance (EXPERIMENTS.md note 5).
func RunSeeds(cfg Config, w Workload, rc RunConfig, n int) (SeedStats, error) {
	if n < 1 {
		n = 1
	}
	var (
		agg stats.Welford
		out SeedStats
	)
	for seed := uint64(1); seed <= uint64(n); seed++ {
		rc.Seed = seed
		res, err := Run(cfg, w, rc)
		if err != nil {
			return out, err
		}
		agg.Add(res.IPC)
		out.Results = append(out.Results, res)
	}
	out.MeanIPC = agg.Mean()
	out.StdIPC = agg.Std()
	return out, nil
}
