// Command coaxial-report regenerates the paper's figures and tables as
// text: it runs the required simulations and prints the same rows/series
// each figure reports.
//
// Usage:
//
//	coaxial-report -fig 5                  # Fig. 5 on the full suite
//	coaxial-report -fig 7 -quick           # representative subset
//	coaxial-report -table 2                # static derivation, no sims
//	coaxial-report -all -quick             # everything, subset where slow
//
// Figures: 1, 2a, 2b, 5, 6, 7, 8, 9, 10, 11. Tables: 1, 2, 3, 4, 5.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"coaxial"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure to regenerate (1, 2a, 2b, 5, 6, 7, 8, 9, 10, 11)")
		table     = flag.String("table", "", "table to regenerate (1, 2, 3, 4, 5)")
		ablations = flag.Bool("ablations", false, "run the extension studies (capacity/cost, channel scaling, CALM threshold, MSHRs)")
		all       = flag.Bool("all", false, "regenerate everything")
		quick     = flag.Bool("quick", false, "representative workload subset and short windows")
		measure   = flag.Uint64("measure", 0, "override measured instructions per core")
		seed      = flag.Uint64("seed", 1, "workload generation seed")
	)
	flag.Parse()

	rc := coaxial.DefaultRunConfig()
	rc.Seed = *seed
	workloads := coaxial.Workloads()
	if *quick {
		rc.WarmupInstr, rc.MeasureInstr = 10_000, 60_000
		workloads = coaxial.RepresentativeWorkloads()
	}
	if *measure > 0 {
		rc.MeasureInstr = *measure
	}

	r := &reporter{rc: rc, workloads: workloads, quick: *quick}

	if *all {
		for _, f := range []string{"1", "2a", "2b", "5", "6", "7", "8", "9", "10", "11"} {
			r.figure(f)
		}
		for _, t := range []string{"1", "2", "3", "4", "5"} {
			r.table(t)
		}
		return
	}
	if *fig != "" {
		r.figure(*fig)
	}
	if *table != "" {
		r.table(*table)
	}
	if *ablations {
		r.ablations()
	}
	if *fig == "" && *table == "" && !*ablations {
		flag.Usage()
		os.Exit(2)
	}
}

type reporter struct {
	rc        coaxial.RunConfig
	workloads []coaxial.Workload
	quick     bool

	// mainRows caches the baseline-vs-4x sweep shared by several outputs.
	mainRows []coaxial.PairRow
}

func (r *reporter) main() []coaxial.PairRow {
	if r.mainRows == nil {
		rows, err := coaxial.MainResults(r.workloads, r.rc)
		check(err)
		r.mainRows = rows
	}
	return r.mainRows
}

func (r *reporter) figure(f string) {
	start := time.Now()
	switch f {
	case "1":
		coaxial.ReportFig1(os.Stdout)
	case "2a":
		utils := []float64{0.02, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
		reqs := 20000
		if r.quick {
			reqs = 4000
		}
		pts, err := coaxial.Fig2aLoadLatency(utils, reqs/10, reqs, r.rc.Seed)
		check(err)
		coaxial.ReportFig2a(os.Stdout, pts)
	case "2b":
		coaxial.ReportFig2b(os.Stdout, r.main())
	case "5":
		coaxial.ReportFig5(os.Stdout, r.main())
	case "6":
		n := 10
		if r.quick {
			n = 3
		}
		rows, err := coaxial.Fig6Mixes(n, r.rc)
		check(err)
		coaxial.ReportFig6(os.Stdout, rows)
	case "7":
		wl := r.workloads
		if !r.quick && len(wl) > 8 {
			// The paper's Fig. 7 shows four workloads plus the mean; a
			// full 36x12 sweep is available with -fig 7 -measure ... by
			// editing the subset here, but the default keeps it tractable.
			wl = coaxial.RepresentativeWorkloads()
		}
		rows, err := coaxial.Fig7CALM(wl, r.rc)
		check(err)
		coaxial.ReportFig7(os.Stdout, rows)
	case "8":
		rows, err := coaxial.Fig8Configs(r.workloads, r.rc)
		check(err)
		coaxial.ReportFig8(os.Stdout, rows)
	case "9":
		coaxial.ReportFig9(os.Stdout, r.main())
	case "10":
		rows, err := coaxial.Fig10LatencySensitivity(r.workloads, r.rc)
		check(err)
		coaxial.ReportFig10(os.Stdout, rows)
	case "11":
		rows, err := coaxial.Fig11Utilization(r.workloads, r.rc)
		check(err)
		coaxial.ReportFig11(os.Stdout, rows)
	default:
		fmt.Fprintf(os.Stderr, "coaxial-report: unknown figure %q\n", f)
		os.Exit(2)
	}
	fmt.Printf("  [fig %s regenerated in %.1fs]\n\n", f, time.Since(start).Seconds())
}

func (r *reporter) table(t string) {
	switch t {
	case "1":
		coaxial.ReportTableI(os.Stdout)
	case "2":
		coaxial.ReportTableII(os.Stdout)
	case "3":
		coaxial.ReportTableIII(os.Stdout)
	case "4":
		coaxial.ReportTableIV(os.Stdout, r.main(), r.workloads)
	case "5":
		base, coax := coaxial.TableVPower(r.main())
		coaxial.ReportTableV(os.Stdout, base, coax)
	default:
		fmt.Fprintf(os.Stderr, "coaxial-report: unknown table %q\n", t)
		os.Exit(2)
	}
	fmt.Println()
}

func (r *reporter) ablations() {
	start := time.Now()
	w, err := coaxial.WorkloadByName("stream-triad")
	check(err)
	sum, err := coaxial.RunAblations(w, r.rc)
	check(err)
	coaxial.ReportAblations(os.Stdout, sum)
	fmt.Printf("  [ablations completed in %.1fs]\n\n", time.Since(start).Seconds())
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "coaxial-report: %v\n", err)
		os.Exit(1)
	}
}
