// Command coaxial-calibrate characterizes the synthetic workload suite
// against the paper's published Table IV: it runs every workload on the
// DDR baseline and reports measured IPC and LLC MPKI next to the paper's
// values, with relative errors and a summary of calibration quality. Use
// it after editing internal/trace/workloads.go.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"coaxial"
)

func main() {
	var (
		warmup  = flag.Uint64("warmup", 10_000, "timed warmup instructions per core")
		measure = flag.Uint64("measure", 60_000, "measured instructions per core")
		seed    = flag.Uint64("seed", 1, "workload generation seed")
		sortBy  = flag.String("sort", "table", "row order: table, ipc-err, mpki-err")
	)
	flag.Parse()

	rc := coaxial.DefaultRunConfig()
	rc.WarmupInstr, rc.MeasureInstr, rc.Seed = *warmup, *measure, *seed

	type row struct {
		name               string
		ipc, refIPC        float64
		mpki, refMPKI      float64
		ipcErr, mpkiErr    float64
		utilPct, rwRatio   float64
		missRatio, queueNS float64
	}
	var rows []row

	cfg := coaxial.Baseline()
	for _, w := range coaxial.Workloads() {
		res, err := coaxial.Run(cfg, w, rc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coaxial-calibrate: %s: %v\n", w.Params.Name, err)
			os.Exit(1)
		}
		r := row{
			name: w.Params.Name,
			ipc:  res.IPC, refIPC: w.PaperIPC,
			mpki: res.LLCMPKI, refMPKI: w.PaperMPKI,
			utilPct:   res.Utilization * 100,
			missRatio: res.LLCMissRatio,
			queueNS:   res.QueueNS,
		}
		if res.WriteGBs > 0 {
			r.rwRatio = res.ReadGBs / res.WriteGBs
		}
		if w.PaperIPC > 0 {
			r.ipcErr = (res.IPC - w.PaperIPC) / w.PaperIPC * 100
		}
		if w.PaperMPKI > 0 {
			r.mpkiErr = (res.LLCMPKI - w.PaperMPKI) / w.PaperMPKI * 100
		}
		rows = append(rows, r)
	}

	switch *sortBy {
	case "ipc-err":
		sort.Slice(rows, func(i, j int) bool { return math.Abs(rows[i].ipcErr) > math.Abs(rows[j].ipcErr) })
	case "mpki-err":
		sort.Slice(rows, func(i, j int) bool { return math.Abs(rows[i].mpkiErr) > math.Abs(rows[j].mpkiErr) })
	}

	fmt.Printf("%-15s %7s %7s %7s | %7s %7s %7s | %6s %6s %6s\n",
		"workload", "IPC", "paper", "err%", "MPKI", "paper", "err%", "util%", "R:W", "q(ns)")
	var ipcAbs, mpkiAbs []float64
	for _, r := range rows {
		ipcAbs = append(ipcAbs, math.Abs(r.ipcErr))
		mpkiAbs = append(mpkiAbs, math.Abs(r.mpkiErr))
		fmt.Printf("%-15s %7.2f %7.2f %+6.0f%% | %7.1f %7.1f %+6.0f%% | %5.0f%% %6.1f %6.0f\n",
			r.name, r.ipc, r.refIPC, r.ipcErr, r.mpki, r.refMPKI, r.mpkiErr,
			r.utilPct, r.rwRatio, r.queueNS)
	}
	fmt.Printf("\ncalibration quality: median |IPC err| %.0f%%, median |MPKI err| %.0f%% (n=%d)\n",
		median(ipcAbs), median(mpkiAbs), len(rows))
	fmt.Println("note: MIS has no Table IV row; its reference values are this project's targets.")
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}
