// Command coaxial-sweep runs the full experiment grid (every system
// configuration across every workload) and emits one CSV row per run, for
// downstream analysis or plotting. It is the equivalent of the paper
// artifact's runall.py + collect_stats.py.
//
// Usage:
//
//	coaxial-sweep > results.csv
//	coaxial-sweep -configs ddr-baseline,coaxial-4x -measure 300000
//	coaxial-sweep -mixes 10 >> results.csv
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"coaxial"
	"coaxial/internal/profiling"
)

var allConfigs = []struct {
	name string
	mk   func() coaxial.Config
}{
	{"ddr-baseline", coaxial.Baseline},
	{"coaxial-2x", coaxial.Coaxial2x},
	{"coaxial-4x", coaxial.Coaxial4x},
	{"coaxial-5x", coaxial.Coaxial5x},
	{"coaxial-asym", coaxial.CoaxialAsym},
	{"coaxial-pooled", coaxial.CoaxialPooled},
}

func main() {
	var (
		cfgList  = flag.String("configs", "ddr-baseline,coaxial-2x,coaxial-4x,coaxial-asym", "comma-separated configurations")
		warmup   = flag.Uint64("warmup", 40_000, "timed warmup instructions per core")
		measure  = flag.Uint64("measure", 150_000, "measured instructions per core")
		seed     = flag.Uint64("seed", 1, "workload generation seed")
		mixes    = flag.Int("mixes", 0, "additionally run N workload mixes")
		racks    = flag.Int("racks", 0, "additionally run N mixed-MPKI rack mixes")
		validate = flag.Bool("validate", false, "run the differential validation harness alongside every simulation (observation-only)")
		workList = flag.String("workloads", "", "comma-separated workload subset (default: all 36)")
		workers  = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		par      = flag.Int("parallelism", 0, "tick-phase goroutines per simulation (<=1 = sequential; results identical)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}
	defer stopProf()

	// SIGINT stops the sweep cleanly: in-flight simulations halt at their
	// next cycle-window boundary and the run exits with the cancellation
	// error instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rc := coaxial.DefaultRunConfig()
	rc.WarmupInstr, rc.MeasureInstr, rc.Seed = *warmup, *measure, *seed
	rc.Workers = *workers
	rc.Parallelism = *par
	rc.Validate = *validate
	runner := coaxial.NewRunner(coaxial.WithRunConfig(rc))

	var cfgs []coaxial.Config
	for _, name := range strings.Split(*cfgList, ",") {
		found := false
		for _, c := range allConfigs {
			if c.name == name {
				cfgs = append(cfgs, c.mk())
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "coaxial-sweep: unknown config %q\n", name)
			os.Exit(2)
		}
	}

	workloads := coaxial.Workloads()
	if *workList != "" {
		workloads = workloads[:0]
		for _, name := range strings.Split(*workList, ",") {
			w, err := coaxial.WorkloadByName(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "coaxial-sweep: %v\n", err)
				os.Exit(2)
			}
			workloads = append(workloads, w)
		}
	}

	out := csv.NewWriter(os.Stdout)
	defer out.Flush()
	header := []string{
		"config", "workload", "ipc", "cpi", "cycles",
		"onchip_ns", "queue_ns", "dram_ns", "cxl_ns", "total_ns",
		"p50_ns", "p90_ns", "p99_ns",
		"read_gbs", "write_gbs", "peak_gbs", "utilization",
		"llc_mpki", "llc_miss_ratio",
		"calm_l2miss", "calm_calmed", "calm_fp", "calm_fn",
		"dram_act", "dram_rd", "dram_wr", "dram_ref", "row_hits", "row_misses",
		"retired",
	}
	if err := out.Write(header); err != nil {
		fail(err)
	}

	var jobs []coaxial.SuiteJob
	for _, w := range workloads {
		for _, c := range cfgs {
			jobs = append(jobs, coaxial.SuiteJob{Config: c, Workload: w})
		}
	}
	results, err := runner.RunSuite(ctx, jobs)
	if err != nil {
		fail(err)
	}
	for _, res := range results {
		writeRow(out, res)
	}

	for m := 0; m < *mixes; m++ {
		wl := coaxial.MixWorkloads(m, 12)
		for _, c := range cfgs {
			res, err := runner.RunMix(ctx, c, wl)
			if err != nil {
				fail(err)
			}
			res.Workload = fmt.Sprintf("mix%d", m)
			writeRow(out, res)
		}
	}

	for m := 0; m < *racks; m++ {
		wl := coaxial.RackMixWorkloads(m, 12)
		for _, c := range cfgs {
			res, err := runner.RunMix(ctx, c, wl)
			if err != nil {
				fail(err)
			}
			res.Workload = fmt.Sprintf("rack%d", m)
			writeRow(out, res)
		}
	}
}

func writeRow(out *csv.Writer, r coaxial.Result) {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	rec := []string{
		r.Config, r.Workload, f(r.IPC), f(r.CPI), strconv.FormatInt(r.Cycles, 10),
		f(r.OnChipNS), f(r.QueueNS), f(r.ServiceNS), f(r.CXLNS), f(r.TotalNS),
		f(r.P50NS), f(r.P90NS), f(r.P99NS),
		f(r.ReadGBs), f(r.WriteGBs), f(r.PeakGBs), f(r.Utilization),
		f(r.LLCMPKI), f(r.LLCMissRatio),
		u(r.CALM.L2Misses), u(r.CALM.CALMed), f(r.CALM.FPRate()), f(r.CALM.FNRate()),
		u(r.DRAM.ACT), u(r.DRAM.RD), u(r.DRAM.WR), u(r.DRAM.REF), u(r.DRAM.RowHits), u(r.DRAM.RowMisses),
		u(r.Retired),
	}
	if err := out.Write(rec); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "coaxial-sweep: %v\n", err)
	os.Exit(1)
}
