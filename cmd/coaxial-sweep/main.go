// Command coaxial-sweep runs the full experiment grid (every topology
// preset across every workload) and emits one CSV row per run, for
// downstream analysis or plotting. It is the equivalent of the paper
// artifact's runall.py + collect_stats.py. With -hosts N, every selected
// topology scales to an N-host rack (pooled topologies share devices;
// the rest run uncoupled in lockstep) and each row is the rack summary.
//
// Usage:
//
//	coaxial-sweep > results.csv
//	coaxial-sweep -configs ddr-baseline,coaxial-4x -measure 300000
//	coaxial-sweep -configs coaxial-pooled -hosts 4 -racks 4 >> results.csv
//	coaxial-sweep -mixes 10 >> results.csv
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"coaxial"
	"coaxial/internal/profiling"
)

func main() {
	var (
		cfgList  = flag.String("configs", "ddr-baseline,coaxial-2x,coaxial-4x,coaxial-asym", "comma-separated topology presets")
		hosts    = flag.Int("hosts", 0, "scale every topology to N hosts (0 = preset default)")
		warmup   = flag.Uint64("warmup", 40_000, "timed warmup instructions per core")
		measure  = flag.Uint64("measure", 150_000, "measured instructions per core")
		seed     = flag.Uint64("seed", 1, "workload generation seed")
		mixes    = flag.Int("mixes", 0, "additionally run N workload mixes")
		racks    = flag.Int("racks", 0, "additionally run N mixed-MPKI rack mixes")
		validate = flag.Bool("validate", false, "run the differential validation harness alongside every simulation (observation-only)")
		workList = flag.String("workloads", "", "comma-separated workload subset (default: all 36)")
		workers  = flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		par      = flag.Int("parallelism", 0, "tick-phase goroutines per simulation (<=1 = sequential; results identical)")
		rackPar  = flag.Int("rack-parallelism", 0, "host-phase goroutines per rack simulation (<=1 = sequential; results identical)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}
	defer stopProf()

	// SIGINT stops the sweep cleanly: in-flight simulations halt at their
	// next cycle-window boundary and the run exits with the cancellation
	// error instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rc := coaxial.DefaultRunConfig()
	rc.WarmupInstr, rc.MeasureInstr, rc.Seed = *warmup, *measure, *seed
	rc.Workers = *workers
	rc.Parallelism = *par
	rc.RackParallelism = *rackPar
	rc.Validate = *validate
	runner := coaxial.NewRunner(coaxial.WithRunConfig(rc))

	var presets []coaxial.TopologyPreset
	for _, name := range strings.Split(*cfgList, ",") {
		p, err := coaxial.TopologyPresetByName(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coaxial-sweep: %v\n", err)
			os.Exit(2)
		}
		if *hosts > 0 {
			p = p.WithHosts(*hosts)
		}
		presets = append(presets, p)
	}

	workloads := coaxial.Workloads()
	if *workList != "" {
		workloads = workloads[:0]
		for _, name := range strings.Split(*workList, ",") {
			w, err := coaxial.WorkloadByName(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "coaxial-sweep: %v\n", err)
				os.Exit(2)
			}
			workloads = append(workloads, w)
		}
	}

	out := csv.NewWriter(os.Stdout)
	defer out.Flush()
	header := []string{
		"config", "workload", "ipc", "cpi", "cycles",
		"onchip_ns", "queue_ns", "dram_ns", "cxl_ns", "total_ns",
		"p50_ns", "p90_ns", "p99_ns",
		"read_gbs", "write_gbs", "peak_gbs", "utilization",
		"llc_mpki", "llc_miss_ratio",
		"calm_l2miss", "calm_calmed", "calm_fp", "calm_fn",
		"dram_act", "dram_rd", "dram_wr", "dram_ref", "row_hits", "row_misses",
		"retired",
	}
	if err := out.Write(header); err != nil {
		fail(err)
	}

	var (
		jobs   []coaxial.SuiteJob
		labels []string
	)
	for _, w := range workloads {
		for _, p := range presets {
			jobs = append(jobs, rateJob(p, w))
			labels = append(labels, w.Params.Name)
		}
	}
	results, err := runner.RunSuite(ctx, jobs)
	if err != nil {
		fail(err)
	}
	for i, res := range results {
		res.Workload = labels[i]
		writeRow(out, res)
	}

	for m := 0; m < *mixes; m++ {
		for _, p := range presets {
			res, err := runMixed(ctx, runner, p, m, coaxial.MixWorkloads)
			if err != nil {
				fail(err)
			}
			res.Workload = fmt.Sprintf("mix%d", m)
			writeRow(out, res)
		}
	}

	for m := 0; m < *racks; m++ {
		for _, p := range presets {
			res, err := runMixed(ctx, runner, p, m, coaxial.RackMixWorkloads)
			if err != nil {
				fail(err)
			}
			res.Workload = fmt.Sprintf("rack%d", m)
			writeRow(out, res)
		}
	}
}

// rateJob builds one suite job: the topology running w on every active
// core of every host (single-host presets take the classic path).
func rateJob(p coaxial.TopologyPreset, w coaxial.Workload) coaxial.SuiteJob {
	if cfg, ok := p.Single(); ok {
		return coaxial.SuiteJob{Config: cfg, Workload: w}
	}
	rackCfg := p.Rack
	hw := make([][]coaxial.Workload, len(rackCfg.Hosts))
	for h, cfg := range rackCfg.Hosts {
		hw[h] = make([]coaxial.Workload, hostCores(cfg))
		for i := range hw[h] {
			hw[h][i] = w
		}
	}
	return coaxial.SuiteJob{Rack: &rackCfg, HostWorkloads: hw, Workload: w}
}

// runMixed runs workload mix m on the topology: single-host presets get
// mix m directly; racks stagger the mix index per host (host h runs mix
// m+h) so hosts stay heterogeneous, and report the rack summary row.
func runMixed(ctx context.Context, runner *coaxial.Runner, p coaxial.TopologyPreset, m int, mk func(idx, cores int) []coaxial.Workload) (coaxial.Result, error) {
	if cfg, ok := p.Single(); ok {
		return runner.RunMix(ctx, cfg, mk(m, cfg.Cores))
	}
	hw := make([][]coaxial.Workload, len(p.Rack.Hosts))
	for h, cfg := range p.Rack.Hosts {
		hw[h] = mk(m+h, hostCores(cfg))
	}
	rr, err := runner.RunRack(ctx, p.Rack, hw)
	return rr.Summary(), err
}

func hostCores(cfg coaxial.Config) int {
	if cfg.ActiveCores > 0 {
		return cfg.ActiveCores
	}
	return cfg.Cores
}

func writeRow(out *csv.Writer, r coaxial.Result) {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	rec := []string{
		r.Config, r.Workload, f(r.IPC), f(r.CPI), strconv.FormatInt(r.Cycles, 10),
		f(r.OnChipNS), f(r.QueueNS), f(r.ServiceNS), f(r.CXLNS), f(r.TotalNS),
		f(r.P50NS), f(r.P90NS), f(r.P99NS),
		f(r.ReadGBs), f(r.WriteGBs), f(r.PeakGBs), f(r.Utilization),
		f(r.LLCMPKI), f(r.LLCMissRatio),
		u(r.CALM.L2Misses), u(r.CALM.CALMed), f(r.CALM.FPRate()), f(r.CALM.FNRate()),
		u(r.DRAM.ACT), u(r.DRAM.RD), u(r.DRAM.WR), u(r.DRAM.REF), u(r.DRAM.RowHits), u(r.DRAM.RowMisses),
		u(r.Retired),
	}
	if err := out.Write(rec); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "coaxial-sweep: %v\n", err)
	os.Exit(1)
}
