// Command coaxial-bench turns `go test -bench` output into the repo's
// BENCH_pr<N>.json snapshot format, and checks fresh benchmark output
// against a checked-in snapshot for CI's perf-smoke gate.
//
// Emit a snapshot (benchmarks repeated via -count keep their fastest run):
//
//	go test -run '^$' -bench . -benchtime 5x -count 2 . |
//	    coaxial-bench -pr 6 -baseline BENCH_pr2.json -note "..." > BENCH_pr6.json
//
// Gate on regression (fails when any benchmark present in both the fresh
// output and the snapshot is more than -factor times slower):
//
//	go test -run '^$' -bench 'BenchmarkRunWindowLoaded$' -benchtime 3x . |
//	    coaxial-bench -check BENCH_pr6.json -factor 2
//
// When the bench run used -benchmem, allocs/op is recorded in the
// snapshot (allocs_per_op) and the check mode additionally fails on more
// than -alloc-factor growth in allocations per op — the cheap CI proxy
// for the zero-alloc hot-path discipline alloccheck enforces statically.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"
	"time"
)

// benchLine matches a testing benchmark result row, with the optional
// -benchmem columns:
// BenchmarkName/sub-8  5  248123456 ns/op  [1024 B/op  12 allocs/op]
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ B/op\s+([0-9]+) allocs/op)?`)

// parseBench reads `go test -bench` output, returning ns/op per benchmark
// name (GOMAXPROCS suffix stripped) and, when the run used -benchmem,
// allocs/op. Repeated names (-count > 1) keep the minimum of each metric
// independently: the fastest run is the least noise-polluted time
// estimate, and the smallest allocation count is the steady-state floor
// (warm-up runs can only allocate more).
func parseBench(f *os.File) (map[string]float64, map[string]float64, error) {
	out := make(map[string]float64)
	allocs := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || v < prev {
			out[m[1]] = v
		}
		if m[3] != "" {
			a, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
			}
			if prev, ok := allocs[m[1]]; !ok || a < prev {
				allocs[m[1]] = a
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("no benchmark results on stdin")
	}
	return out, allocs, nil
}

// snapshot is the subset of the BENCH_pr<N>.json schema both modes need.
// Allocs is absent from snapshots cut before -benchmem was added; the
// check mode then skips the allocation gate.
type snapshot struct {
	PR         int                `json:"pr"`
	Benchmarks map[string]float64 `json:"benchmarks"`
	Allocs     map[string]float64 `json:"allocs_per_op,omitempty"`
}

func readSnapshot(path string) (snapshot, error) {
	var s snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func main() {
	var (
		pr          = flag.Int("pr", 0, "PR number for the emitted snapshot")
		note        = flag.String("note", "", "free-form note recorded in the snapshot")
		baseline    = flag.String("baseline", "", "prior BENCH_pr<N>.json to record baselines and speedups against")
		check       = flag.String("check", "", "check mode: snapshot to compare stdin against instead of emitting")
		factor      = flag.Float64("factor", 2.0, "check mode: maximum allowed slowdown vs the snapshot")
		allocFactor = flag.Float64("alloc-factor", 2.0, "check mode: maximum allowed allocs/op growth vs the snapshot (needs -benchmem on both sides)")
	)
	flag.Parse()

	cur, curAllocs, err := parseBench(os.Stdin)
	if err != nil {
		fail(err)
	}

	if *check != "" {
		snap, err := readSnapshot(*check)
		if err != nil {
			fail(err)
		}
		compared, failed := 0, 0
		for name, ref := range snap.Benchmarks {
			got, ok := cur[name]
			if !ok {
				continue
			}
			compared++
			ratio := got / ref
			status := "ok"
			if ratio > *factor {
				status = "REGRESSION"
				failed++
			}
			fmt.Printf("%-50s %12.0f -> %12.0f ns/op (%.2fx) %s\n", name, ref, got, ratio, status)
			// Allocation gate: only when both the snapshot and the fresh
			// run carry allocs/op for this benchmark. A zero-alloc
			// reference tolerates a small absolute drift instead of an
			// infinite ratio.
			refA, okRef := snap.Allocs[name]
			gotA, okGot := curAllocs[name]
			if !okRef || !okGot {
				continue
			}
			aStatus := "ok"
			if (refA == 0 && gotA > 8) || (refA > 0 && gotA/refA > *allocFactor) {
				aStatus = "ALLOC REGRESSION"
				failed++
			}
			fmt.Printf("%-50s %12.0f -> %12.0f allocs/op %s\n", name, refA, gotA, aStatus)
		}
		if compared == 0 {
			fail(fmt.Errorf("no benchmark in stdin matches any name in %s (renamed benchmarks silently skip the gate)", *check))
		}
		if failed > 0 {
			fail(fmt.Errorf("%d gate(s) regressed beyond %.1fx time / %.1fx allocs vs %s", failed, *factor, *allocFactor, *check))
		}
		fmt.Printf("%d benchmarks within %.1fx of %s\n", compared, *factor, *check)
		return
	}

	doc := map[string]any{
		"pr":         *pr,
		"date":       time.Now().Format("2006-01-02"),
		"go":         "make bench (go test -run '^$' -bench <name> .)",
		"note":       *note,
		"benchmarks": round(cur),
	}
	if len(curAllocs) > 0 {
		doc["allocs_per_op"] = curAllocs
	}
	if *baseline != "" {
		snap, err := readSnapshot(*baseline)
		if err != nil {
			fail(err)
		}
		base := make(map[string]float64)
		speed := make(map[string]float64)
		for name, ref := range snap.Benchmarks {
			if got, ok := cur[name]; ok && got > 0 {
				base[name] = ref
				speed[name] = math.Round(100*ref/got) / 100
			}
		}
		doc[fmt.Sprintf("baselines_pr%d", snap.PR)] = base
		doc[fmt.Sprintf("speedups_vs_pr%d", snap.PR)] = speed
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fail(err)
	}
}

// round trims ns/op to two decimals (the precision the per-step
// nanosecond benchmarks report); window-scale values round to whole ns.
func round(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = math.Round(v*100) / 100
	}
	return out
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "coaxial-bench: %v\n", err)
	os.Exit(1)
}
