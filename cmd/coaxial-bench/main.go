// Command coaxial-bench turns `go test -bench` output into the repo's
// BENCH_pr<N>.json snapshot format, and checks fresh benchmark output
// against a checked-in snapshot for CI's perf-smoke gate.
//
// Emit a snapshot (benchmarks repeated via -count keep their fastest run):
//
//	go test -run '^$' -bench . -benchtime 5x -count 2 . |
//	    coaxial-bench -pr 6 -baseline BENCH_pr2.json -note "..." > BENCH_pr6.json
//
// Gate on regression (fails when any benchmark present in both the fresh
// output and the snapshot is more than -factor times slower):
//
//	go test -run '^$' -bench 'BenchmarkRunWindowLoaded$' -benchtime 3x . |
//	    coaxial-bench -check BENCH_pr6.json -factor 2
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"
	"time"
)

// benchLine matches a testing benchmark result row:
// BenchmarkName/sub-8  5  248123456 ns/op  [...]
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench reads `go test -bench` output, returning ns/op per benchmark
// name (GOMAXPROCS suffix stripped). Repeated names (-count > 1) keep the
// minimum: the fastest run is the least noise-polluted estimate.
func parseBench(f *os.File) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || v < prev {
			out[m[1]] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark results on stdin")
	}
	return out, nil
}

// snapshot is the subset of the BENCH_pr<N>.json schema both modes need.
type snapshot struct {
	PR         int                `json:"pr"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

func readSnapshot(path string) (snapshot, error) {
	var s snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func main() {
	var (
		pr       = flag.Int("pr", 0, "PR number for the emitted snapshot")
		note     = flag.String("note", "", "free-form note recorded in the snapshot")
		baseline = flag.String("baseline", "", "prior BENCH_pr<N>.json to record baselines and speedups against")
		check    = flag.String("check", "", "check mode: snapshot to compare stdin against instead of emitting")
		factor   = flag.Float64("factor", 2.0, "check mode: maximum allowed slowdown vs the snapshot")
	)
	flag.Parse()

	cur, err := parseBench(os.Stdin)
	if err != nil {
		fail(err)
	}

	if *check != "" {
		snap, err := readSnapshot(*check)
		if err != nil {
			fail(err)
		}
		compared, failed := 0, 0
		for name, ref := range snap.Benchmarks {
			got, ok := cur[name]
			if !ok {
				continue
			}
			compared++
			ratio := got / ref
			status := "ok"
			if ratio > *factor {
				status = "REGRESSION"
				failed++
			}
			fmt.Printf("%-50s %12.0f -> %12.0f ns/op (%.2fx) %s\n", name, ref, got, ratio, status)
		}
		if compared == 0 {
			fail(fmt.Errorf("no benchmark in stdin matches any name in %s (renamed benchmarks silently skip the gate)", *check))
		}
		if failed > 0 {
			fail(fmt.Errorf("%d of %d benchmarks regressed more than %.1fx vs %s", failed, compared, *factor, *check))
		}
		fmt.Printf("%d benchmarks within %.1fx of %s\n", compared, *factor, *check)
		return
	}

	doc := map[string]any{
		"pr":         *pr,
		"date":       time.Now().Format("2006-01-02"),
		"go":         "make bench (go test -run '^$' -bench <name> .)",
		"note":       *note,
		"benchmarks": round(cur),
	}
	if *baseline != "" {
		snap, err := readSnapshot(*baseline)
		if err != nil {
			fail(err)
		}
		base := make(map[string]float64)
		speed := make(map[string]float64)
		for name, ref := range snap.Benchmarks {
			if got, ok := cur[name]; ok && got > 0 {
				base[name] = ref
				speed[name] = math.Round(100*ref/got) / 100
			}
		}
		doc[fmt.Sprintf("baselines_pr%d", snap.PR)] = base
		doc[fmt.Sprintf("speedups_vs_pr%d", snap.PR)] = speed
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fail(err)
	}
}

// round trims ns/op to two decimals (the precision the per-step
// nanosecond benchmarks report); window-scale values round to whole ns.
func round(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = math.Round(v*100) / 100
	}
	return out
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "coaxial-bench: %v\n", err)
	os.Exit(1)
}
