package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"coaxial/internal/lint"
	"coaxial/internal/lint/analysis"
)

// vetConfig is the subset of the cmd/vet .cfg file the tool needs. go vet
// writes one per package and invokes the tool with its path as the sole
// argument.
type vetConfig struct {
	ID          string // package ID (import path)
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string // import path in source → canonical path
	PackageFile map[string]string // canonical path → export data file
	Standard    map[string]bool
	ModulePath  string
	VetxOnly    bool   // facts only: no diagnostics wanted
	VetxOutput  string // where to write this package's facts
}

// vettoolMode implements the `go vet -vettool` protocol for one package:
// parse the listed Go files, type-check them against the export data go vet
// supplies, run the suite, print findings, and write an (empty) facts file.
// Cross-package purity facts are unavailable in this mode — only the
// current package's function bodies are in source form — so the suite runs
// with facts computed for this package alone and treats unknown calls
// permissively. Exit status: 0 clean, 2 findings (go vet's convention).
func vettoolMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coaxial-lint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "coaxial-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// go vet expects the facts file regardless of the outcome.
	if cfg.VetxOutput != "" {
		defer os.WriteFile(cfg.VetxOutput, []byte{}, 0o644)
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The standalone driver analyzes non-test sources only (tests may
		// freely range maps for t.Run tables); keep vettool mode consistent.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "coaxial-lint:", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exportFile, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exportFile)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tcfg := &types.Config{
		Importer: imp,
		Error:    func(error) {}, // the compiler reports build errors; vet tools stay quiet
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	pkg, _ := tcfg.Check(cfg.ImportPath, fset, files, info)
	if pkg == nil {
		return 0 // unrecoverable type errors: leave reporting to the build
	}

	facts := analysis.NewFactStore()
	suite := lint.Suite()
	known, names := lint.DirectiveNames(suite)
	diags := analysis.CheckDirectives(fset, files, known, names)
	for _, a := range suite {
		run := a // bind for the closure below
		report := func(d analysis.Diagnostic) {
			if !run.FactsOnly {
				diags = append(diags, d)
			}
		}
		pass := analysis.NewPass(a, fset, files, pkg, info, cfg.ModulePath, facts, report)
		pass.FactsPartial = true // imports are export data: no bodies, no facts
		if err := a.Run(pass); err != nil {
			fmt.Fprintln(os.Stderr, "coaxial-lint:", err)
			return 1
		}
	}
	if len(diags) == 0 {
		return 0
	}
	// go vet parses "file:line:col: message" diagnostics from stderr.
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	return 2
}
