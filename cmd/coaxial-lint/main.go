// Command coaxial-lint runs the coaxlint analyzer suite (internal/lint):
// static enforcement of the simulator's determinism, phase-isolation,
// counter-hygiene, and observer-purity invariants (DESIGN.md §6).
//
// Standalone over package patterns (the usual way):
//
//	go run ./cmd/coaxial-lint ./...
//
// As a go vet tool (per-package, driven by the build system):
//
//	go build -o coaxial-lint ./cmd/coaxial-lint
//	go vet -vettool=$PWD/coaxial-lint ./...
//
// In vettool mode the analyzers that need cross-package purity facts
// (phaseiso, observers) run in a degraded mode — go vet type-checks one
// package at a time from export data, so facts about other packages'
// function bodies are unavailable and calls whose purity is unknown are
// allowed rather than flagged. The standalone mode, which CI runs, loads
// the whole module from source and applies the full rules.
//
// A baseline file (-baseline, default .coaxlint.baseline when present)
// records pre-existing findings so CI fails only on new violations;
// regenerate it with -write-baseline after deliberate changes.
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"coaxial/internal/lint"
	"coaxial/internal/lint/analysis"
	"coaxial/internal/lint/loader"
)

func main() {
	// go vet probes its tool with -V=full before handing it a .cfg file;
	// answer the protocol before normal flag parsing.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			printVersion()
			return
		}
		if arg == "-flags" || arg == "--flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vettoolMode(os.Args[1]))
	}

	var (
		baselinePath  = flag.String("baseline", "", "baseline file of accepted findings (default .coaxlint.baseline when it exists)")
		writeBaseline = flag.Bool("write-baseline", false, "rewrite the baseline with the current findings and exit")
		listChecks    = flag.Bool("checks", false, "list the analyzers and exit")
		jsonOut       = flag.Bool("json", false, "emit findings as a JSON array (stable order: file, line, column, analyzer)")
		packagesFlag  = flag.String("packages", "", "comma-separated import-path patterns (trailing /... wildcards) restricting which packages report; the whole module is still loaded, so cross-package facts stay exact")
		applyFix      = flag.Bool("fix", false, "apply the suggested fixes attached to findings, then report only what remains unfixable")
	)
	flag.Parse()

	suite := lint.Suite()
	if *listChecks {
		for _, a := range suite {
			if a.FactsOnly {
				continue
			}
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	prog, err := loader.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	for _, pkg := range prog.Packages {
		if pkg.Target && len(pkg.TypeErrors) > 0 {
			fatal(fmt.Errorf("%s: type errors (does the package build?): %v", pkg.ImportPath, pkg.TypeErrors[0]))
		}
	}
	if *packagesFlag != "" {
		if err := scopeTargets(prog, *packagesFlag); err != nil {
			fatal(err)
		}
	}

	diags, err := lint.Run(prog, suite)
	if err != nil {
		fatal(err)
	}

	if *baselinePath == "" {
		if _, err := os.Stat(".coaxlint.baseline"); err == nil {
			*baselinePath = ".coaxlint.baseline"
		}
	}
	if *writeBaseline {
		path := *baselinePath
		if path == "" {
			path = ".coaxlint.baseline"
		}
		if err := writeBaselineFile(path, diags); err != nil {
			fatal(err)
		}
		fmt.Printf("coaxial-lint: wrote %d finding(s) to %s\n", len(diags), path)
		return
	}

	baseline := map[string]bool{}
	if *baselinePath != "" {
		baseline, err = readBaselineFile(*baselinePath)
		if err != nil {
			fatal(err)
		}
	}

	var fresh []analysis.Diagnostic
	for _, d := range diags {
		if baseline[baselineKey(d)] {
			continue
		}
		fresh = append(fresh, d)
	}
	if *applyFix {
		n, err := analysis.ApplyFixes(fresh, os.ReadFile, func(name string, b []byte) error {
			return os.WriteFile(name, b, 0o644)
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("coaxial-lint: applied %d edit(s)\n", n)
		// Findings whose fix was just applied are resolved; only the
		// unfixable remainder still fails the run.
		var rest []analysis.Diagnostic
		for _, d := range fresh {
			if d.Fix == nil {
				rest = append(rest, d)
			}
		}
		fresh = rest
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, fresh); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range fresh {
			fmt.Println(d)
		}
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "coaxial-lint: %d finding(s)\n", len(fresh))
		os.Exit(1)
	}
}

// jsonDiagnostic is the -json wire form of one finding. Diagnostics arrive
// already sorted (file, line, column, analyzer), so the output is stable
// across runs for diffing and for the CI problem matcher. Fix, when
// present, carries byte-offset edits a tool can apply directly (the same
// shape ApplyFixes consumes).
type jsonDiagnostic struct {
	File     string                 `json:"file"`
	Line     int                    `json:"line"`
	Column   int                    `json:"column"`
	Analyzer string                 `json:"analyzer"`
	Message  string                 `json:"message"`
	Fix      *analysis.SuggestedFix `json:"fix,omitempty"`
}

// writeJSON emits the findings as one indented JSON array ([] when clean).
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Fix:      d.Fix,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// scopeTargets narrows reporting to the packages matching the -packages
// patterns: exact import paths, or prefix patterns with a trailing "/...".
// Dependencies stay loaded (facts remain whole-module exact); only the
// Target bit — which gates reporting — changes. An unmatched pattern is an
// error, catching typos that would otherwise silently lint nothing.
func scopeTargets(prog *loader.Program, patterns string) error {
	pats := strings.Split(patterns, ",")
	matched := make([]bool, len(pats))
	match := func(path string) bool {
		ok := false
		for i, p := range pats {
			p = strings.TrimSpace(p)
			if p == path || p == "..." ||
				(strings.HasSuffix(p, "/...") && (path == strings.TrimSuffix(p, "/...") ||
					strings.HasPrefix(path, strings.TrimSuffix(p, "...")))) {
				matched[i] = true
				ok = true
			}
		}
		return ok
	}
	for _, pkg := range prog.Packages {
		if pkg.Target && !match(pkg.ImportPath) {
			pkg.Target = false
		}
	}
	for i, hit := range matched {
		if !hit {
			return fmt.Errorf("-packages pattern %q matched no loaded package", strings.TrimSpace(pats[i]))
		}
	}
	return nil
}

// printVersion answers `-V=full` in the form cmd/go's toolID parser accepts:
// "name version devel buildID=<hash>". Hashing the executable itself keys go
// vet's result cache on the tool's actual contents, so editing an analyzer
// invalidates cached vet results.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))
		}
	}
	fmt.Printf("coaxial-lint version devel buildID=%s\n", id)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coaxial-lint:", err)
	os.Exit(2)
}

// baselineKey identifies a finding stably across unrelated edits: the line
// number is deliberately excluded so code motion above a baselined site
// does not resurrect it.
func baselineKey(d analysis.Diagnostic) string {
	return fmt.Sprintf("%s|%s|%s", d.Analyzer, d.Pos.Filename, d.Message)
}

func writeBaselineFile(path string, diags []analysis.Diagnostic) error {
	var b strings.Builder
	b.WriteString("# coaxial-lint baseline: accepted pre-existing findings, one per line.\n")
	b.WriteString("# Format: analyzer|file|message. Regenerate with -write-baseline.\n")
	for _, d := range diags {
		b.WriteString(baselineKey(d))
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func readBaselineFile(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line] = true
	}
	return out, sc.Err()
}
