// Command coaxial-serve runs the simulation-as-a-service daemon: a
// long-running HTTP/JSON server accepting run/sweep/rack jobs, scheduling
// them on a bounded worker pool, sharing one warm-state cache across all
// requests, and single-flighting identical in-flight configurations.
//
//	coaxial-serve -addr :8080 -workers 4 -queue 32
//
// Endpoints:
//
//	POST   /v1/jobs             submit a job (202 + job ID)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status + results
//	DELETE /v1/jobs/{id}        cancel; returns salvaged partial results
//	GET    /v1/jobs/{id}/stream chunked JSON-lines progress stream
//	GET    /v1/presets          available topologies and workloads
//	GET    /healthz             liveness (503 while draining)
//	GET    /metrics             scheduler/cache counters (Prometheus text)
//
// SIGINT/SIGTERM drains gracefully: new submissions are rejected, running
// jobs finish (up to -drain), then the process exits. A second signal
// cancels running jobs hard, salvaging partial measurements.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coaxial"
	"coaxial/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 16, "queued-job limit before 429s")
		drain   = flag.Duration("drain", 10*time.Minute, "graceful-shutdown drain budget")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queue, *drain); err != nil {
		fmt.Fprintf(os.Stderr, "coaxial-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue int, drain time.Duration) error {
	srv := serve.New(serve.Options{
		Workers:    workers,
		QueueDepth: queue,
		Engine:     serve.NewRunnerEngine(coaxial.NewRunner()),
		// The daemon is where wall-clock time enters the system; the serve
		// package itself never reads it.
		Clock: time.Now,
	})
	httpSrv := &http.Server{Addr: addr, Handler: srv}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go listen(httpSrv, serveErr)
	fmt.Fprintf(os.Stderr, "coaxial-serve: listening on %s (%d workers, queue %d)\n",
		addr, workers, queue)

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "coaxial-serve: %v: draining (again to cancel jobs)\n", sig)
	}

	// Stop accepting connections, then drain jobs; a second signal
	// escalates to hard cancellation.
	closeCtx, closeCancel := context.WithTimeout(context.Background(), drain)
	defer closeCancel()
	_ = httpSrv.Shutdown(closeCtx)

	drained := make(chan error, 1)
	go drainJobs(srv, closeCtx, drained)
	select {
	case err := <-drained:
		return err
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "coaxial-serve: %v: canceling running jobs\n", sig)
		return srv.Close()
	case <-closeCtx.Done():
		fmt.Fprintln(os.Stderr, "coaxial-serve: drain budget exhausted, canceling running jobs")
		return srv.Close()
	}
}

// listen runs the HTTP accept loop, reporting its terminal error.
func listen(s *http.Server, out chan<- error) {
	err := s.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	out <- err
}

// drainJobs waits for the scheduler to finish queued and running jobs.
func drainJobs(s *serve.Server, ctx context.Context, out chan<- error) {
	out <- s.Shutdown(ctx)
}
