// Command coaxial-trace records and inspects instruction traces in the
// simulator's binary format.
//
// Usage:
//
//	coaxial-trace record -workload lbm -n 1000000 -o lbm.cxtr
//	coaxial-trace info lbm.cxtr
//	coaxial-trace replay -config coaxial-4x lbm.cxtr   # one core per trace file
package main

import (
	"flag"
	"fmt"
	"os"

	"coaxial"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  coaxial-trace record -workload NAME -n COUNT -o FILE [-core N] [-seed S]
  coaxial-trace info FILE...
  coaxial-trace replay [-config NAME] [-measure N] FILE...`)
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "", "workload to record")
	n := fs.Uint64("n", 1_000_000, "instructions to record")
	out := fs.String("o", "", "output file")
	core := fs.Int("core", 0, "instance index (selects address-space base and seed)")
	seed := fs.Uint64("seed", 1, "generation seed")
	_ = fs.Parse(args)
	if *workload == "" || *out == "" {
		usage()
	}
	w, err := coaxial.WorkloadByName(*workload)
	check(err)
	f, err := os.Create(*out)
	check(err)
	defer f.Close()
	check(coaxial.RecordTrace(f, w, *core, *n, *seed))
	st, err := f.Stat()
	check(err)
	fmt.Printf("recorded %d instructions of %s to %s (%d bytes, %.2f B/instr)\n",
		*n, *workload, *out, st.Size(), float64(st.Size())/float64(*n))
}

func info(args []string) {
	if len(args) == 0 {
		usage()
	}
	for _, path := range args {
		f, err := os.Open(path)
		check(err)
		g, err := coaxial.OpenTrace(f)
		check(err)
		var (
			ins                        coaxial.Instr
			total, mem, stores, deps   uint64
			minAddr, maxAddr, prevMiss uint64
		)
		minAddr = ^uint64(0)
		for {
			g.Next(&ins)
			if !ins.IsMem && ins.ExecLat == 1 && ins.Addr == 0 && ins.PC == 0 && total > 0 {
				// Heuristic end: the reader degrades to no-ops at EOF only
				// for non-seekable inputs; for files it loops, so bound by
				// a fixed scan budget instead.
			}
			total++
			if ins.IsMem {
				mem++
				if ins.IsStore {
					stores++
				}
				if ins.Dependent {
					deps++
				}
				if ins.Addr < minAddr {
					minAddr = ins.Addr
				}
				if ins.Addr > maxAddr {
					maxAddr = ins.Addr
				}
			}
			if total == 2_000_000 { // scan budget
				break
			}
			_ = prevMiss
		}
		f.Close()
		fmt.Printf("%s: workload %q\n", path, g.Name())
		fmt.Printf("  scanned %d instructions: %.1f%% memory (%.1f%% stores, %.1f%% dependent)\n",
			total, pct(mem, total), pct(stores, mem), pct(deps, mem))
		if mem > 0 {
			fmt.Printf("  address span: [%#x, %#x] (%.1f MB)\n",
				minAddr, maxAddr, float64(maxAddr-minAddr)/(1<<20))
		}
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	cfgName := fs.String("config", "coaxial-4x", "system configuration")
	measure := fs.Uint64("measure", 100_000, "measured instructions per core")
	warmup := fs.Uint64("warmup", 20_000, "timed warmup instructions per core")
	_ = fs.Parse(args)
	files := fs.Args()
	if len(files) == 0 {
		usage()
	}

	var cfg coaxial.Config
	switch *cfgName {
	case "ddr-baseline":
		cfg = coaxial.Baseline()
	case "coaxial-2x":
		cfg = coaxial.Coaxial2x()
	case "coaxial-4x":
		cfg = coaxial.Coaxial4x()
	case "coaxial-asym":
		cfg = coaxial.CoaxialAsym()
	default:
		check(fmt.Errorf("unknown config %q", *cfgName))
	}
	cfg.ActiveCores = len(files)
	if cfg.ActiveCores > cfg.Cores {
		check(fmt.Errorf("%d trace files for a %d-core system", len(files), cfg.Cores))
	}

	readers := make([]*os.File, len(files))
	seekers := make([]interface {
		Read([]byte) (int, error)
		Seek(int64, int) (int64, error)
	}, 0, len(files))
	for i, path := range files {
		f, err := os.Open(path)
		check(err)
		defer f.Close()
		readers[i] = f
		seekers = append(seekers, f)
	}
	gens := make([]coaxial.Generator, len(files))
	for i := range seekers {
		g, err := coaxial.OpenTrace(readers[i])
		check(err)
		gens[i] = g
	}

	rc := coaxial.DefaultRunConfig()
	rc.WarmupInstr, rc.MeasureInstr = *warmup, *measure
	res, err := coaxial.RunGenerators(cfg, gens, nil, rc)
	check(err)
	fmt.Printf("config %s replaying %d trace(s): IPC %.3f, L2-miss latency %.0f ns (queue %.0f, cxl %.0f), util %.0f%%\n",
		res.Config, len(files), res.IPC, res.TotalNS, res.QueueNS, res.CXLNS, res.Utilization*100)
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "coaxial-trace: %v\n", err)
		os.Exit(1)
	}
}
