// Command coaxial-sim runs a single experiment: one system configuration
// executing one workload (or one workload mix), printing the measured IPC,
// latency breakdown, bandwidth, and CALM statistics.
//
// Usage:
//
//	coaxial-sim -config coaxial-4x -workload stream-copy
//	coaxial-sim -config ddr-baseline -workload gcc -measure 300000
//	coaxial-sim -config coaxial-asym -mix 3
//	coaxial-sim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"

	"coaxial"
	"coaxial/internal/profiling"
)

var configs = map[string]func() coaxial.Config{
	"ddr-baseline":   coaxial.Baseline,
	"coaxial-2x":     coaxial.Coaxial2x,
	"coaxial-4x":     coaxial.Coaxial4x,
	"coaxial-5x":     coaxial.Coaxial5x,
	"coaxial-asym":   coaxial.CoaxialAsym,
	"coaxial-pooled": coaxial.CoaxialPooled,
}

func main() {
	var (
		cfgName  = flag.String("config", "coaxial-4x", "system configuration (see -list)")
		workload = flag.String("workload", "stream-copy", "workload name (see -list)")
		mix      = flag.Int("mix", -1, "run workload mix N instead of -workload")
		rack     = flag.Int("rack", -1, "run mixed-MPKI rack mix N instead of -workload")
		warmup   = flag.Uint64("warmup", 40_000, "timed warmup instructions per core")
		measure  = flag.Uint64("measure", 150_000, "measured instructions per core")
		seed     = flag.Uint64("seed", 1, "workload generation seed")
		cores    = flag.Int("active", 0, "active cores (0 = all)")
		calmR    = flag.Float64("calm-r", 0.70, "CALM_R threshold (with -calm calm-r)")
		calmKind = flag.String("calm", "", "CALM override: off, calm-r, map-i, ideal")
		cxlNS    = flag.Float64("cxl-premium", 0, "CXL total latency premium in ns (0 = default 50)")
		par      = flag.Int("parallelism", 0, "tick-phase goroutines (<=1 = sequential; results identical)")
		clocking = flag.String("clocking", "event", "clock advance: event (skip dead cycles) or cycle (reference loop); results are identical")
		validate = flag.Bool("validate", false, "run the differential validation harness (DDR timing oracle + lifecycle invariants); observation-only")
		sampleD  = flag.Uint64("sample-detail", 0, "sampled simulation: detailed-window instructions per core (with -sample-ff)")
		sampleF  = flag.Uint64("sample-ff", 0, "sampled simulation: fast-forward gap instructions per core (with -sample-detail)")
		list     = flag.Bool("list", false, "list configurations and workloads")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, profErr := profiling.Start(*cpuProf, *memProf)
	if profErr != nil {
		fatalf("%v", profErr)
	}
	defer stopProf()

	if *list {
		fmt.Println("configurations:")
		names := make([]string, 0, len(configs))
		for name := range configs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("workloads:")
		fmt.Printf("  %s\n", strings.Join(coaxial.WorkloadNames(), " "))
		return
	}

	mk, ok := configs[*cfgName]
	if !ok {
		fatalf("unknown config %q (try -list)", *cfgName)
	}
	cfg := mk()
	if *cores > 0 {
		cfg = cfg.WithActiveCores(*cores)
	}
	switch *calmKind {
	case "":
	case "off":
		cfg = cfg.WithCALM(coaxial.CALMConfig{Kind: coaxial.CALMOff})
	case "calm-r":
		cfg = cfg.WithCALM(coaxial.CALMR(*calmR))
	case "map-i":
		cfg = cfg.WithCALM(coaxial.CALMConfig{Kind: coaxial.CALMMAPI})
	case "ideal":
		cfg = cfg.WithCALM(coaxial.CALMConfig{Kind: coaxial.CALMIdeal})
	default:
		fatalf("unknown CALM mechanism %q", *calmKind)
	}
	if *cxlNS > 0 {
		cfg = cfg.WithCXLPortNS(*cxlNS / 4)
	}

	mode := coaxial.EventDriven
	switch *clocking {
	case "event":
	case "cycle":
		mode = coaxial.CycleByCycle
	default:
		fatalf("unknown clocking mode %q (want event or cycle)", *clocking)
	}
	opts := []coaxial.RunnerOption{
		coaxial.WithSeed(*seed),
		coaxial.WithWindows(0, *warmup, *measure),
		coaxial.WithClocking(mode),
		coaxial.WithParallelism(*par),
	}
	if *validate {
		opts = append(opts, coaxial.WithValidation())
	}
	if *sampleD > 0 || *sampleF > 0 {
		if *sampleD == 0 || *sampleF == 0 {
			fatalf("-sample-detail and -sample-ff must both be set")
		}
		opts = append(opts, coaxial.WithSampling(*sampleD, *sampleF))
	}
	runner := coaxial.NewRunner(opts...)

	// SIGINT stops the simulation cleanly at the next cycle-window boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var (
		res coaxial.Result
		err error
	)
	switch {
	case *rack >= 0:
		wl := coaxial.RackMixWorkloads(*rack, cfg.Cores)
		res, err = runner.RunMix(ctx, cfg, wl)
	case *mix >= 0:
		wl := coaxial.MixWorkloads(*mix, cfg.Cores)
		res, err = runner.RunMix(ctx, cfg, wl)
	default:
		var w coaxial.Workload
		w, err = coaxial.WorkloadByName(*workload)
		if err == nil {
			res, err = runner.Run(ctx, cfg, w)
		}
	}
	if err != nil {
		fatalf("%v", err)
	}
	printResult(res)
}

func printResult(r coaxial.Result) {
	fmt.Printf("config:    %s\n", r.Config)
	fmt.Printf("workload:  %s\n", r.Workload)
	fmt.Printf("cycles:    %d (%.1f us)\n", r.Cycles, float64(r.Cycles)/2400)
	fmt.Printf("IPC:       %.3f (CPI %.2f) over %d retired instructions\n", r.IPC, r.CPI, r.Retired)
	fmt.Printf("L2-miss latency: %.0f ns = onchip %.0f + queue %.0f + dram %.0f + cxl %.0f\n",
		r.TotalNS, r.OnChipNS, r.QueueNS, r.ServiceNS, r.CXLNS)
	fmt.Printf("latency percentiles: p50 %.0f ns, p90 %.0f ns, p99 %.0f ns\n", r.P50NS, r.P90NS, r.P99NS)
	fmt.Printf("bandwidth: read %.1f GB/s + write %.1f GB/s = %.1f of %.1f GB/s peak (%.0f%%)\n",
		r.ReadGBs, r.WriteGBs, r.ReadGBs+r.WriteGBs, r.PeakGBs, r.Utilization*100)
	fmt.Printf("LLC:       MPKI %.1f, miss ratio %.0f%%\n", r.LLCMPKI, r.LLCMissRatio*100)
	fmt.Printf("DRAM:      ACT %d PRE %d RD %d WR %d REF %d (row hits %d / misses %d)\n",
		r.DRAM.ACT, r.DRAM.PRE, r.DRAM.RD, r.DRAM.WR, r.DRAM.REF, r.DRAM.RowHits, r.DRAM.RowMisses)
	e := coaxial.DRAMEnergyOf(r)
	fmt.Printf("DRAM energy: %.1f uJ (act %.0f%%, rd %.0f%%, wr %.0f%%, ref %.0f%%, bg %.0f%%) = %.2f W avg\n",
		e.TotalPJ()/1e6,
		100*e.ActivatePJ/e.TotalPJ(), 100*e.ReadPJ/e.TotalPJ(), 100*e.WritePJ/e.TotalPJ(),
		100*e.RefreshPJ/e.TotalPJ(), 100*e.BackgroundPJ/e.TotalPJ(), e.AveragePowerW(r.Cycles))
	d := r.CALM
	if d.L2Misses > 0 {
		fmt.Printf("CALM:      %d L2 misses, %d CALMed (FP %.1f%% of mem accesses, FN %.1f%% of LLC misses)\n",
			d.L2Misses, d.CALMed, d.FPRate()*100, d.FNRate()*100)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "coaxial-sim: "+format+"\n", args...)
	os.Exit(1)
}
