// Command coaxial-sim runs a single experiment: one topology (a
// single-host system or an N-host rack sharing pooled CXL devices)
// executing one workload (or one workload mix), printing the measured
// IPC, latency breakdown, bandwidth, and CALM statistics — plus, for
// racks, per-host results and pooled-device queue/fairness accounting.
//
// Usage:
//
//	coaxial-sim -config coaxial-4x -workload stream-copy
//	coaxial-sim -config ddr-baseline -workload gcc -measure 300000
//	coaxial-sim -config coaxial-asym -mix 3
//	coaxial-sim -config coaxial-pooled -hosts 4 -rack 0
//	coaxial-sim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"coaxial"
	"coaxial/internal/profiling"
)

func main() {
	var (
		cfgName  = flag.String("config", "coaxial-4x", "topology preset (see -list)")
		hosts    = flag.Int("hosts", 0, "scale the topology to N hosts (0 = preset default; >1 runs the rack path)")
		workload = flag.String("workload", "stream-copy", "workload name (see -list)")
		mix      = flag.Int("mix", -1, "run workload mix N instead of -workload")
		rackMix  = flag.Int("rack", -1, "run mixed-MPKI rack mix N instead of -workload")
		warmup   = flag.Uint64("warmup", 40_000, "timed warmup instructions per core")
		measure  = flag.Uint64("measure", 150_000, "measured instructions per core")
		seed     = flag.Uint64("seed", 1, "workload generation seed")
		cores    = flag.Int("active", 0, "active cores per host (0 = all)")
		calmR    = flag.Float64("calm-r", 0.70, "CALM_R threshold (with -calm calm-r)")
		calmKind = flag.String("calm", "", "CALM override: off, calm-r, map-i, ideal")
		cxlNS    = flag.Float64("cxl-premium", 0, "CXL total latency premium in ns (0 = default 50)")
		par      = flag.Int("parallelism", 0, "tick-phase goroutines per host (<=1 = sequential; results identical)")
		rackPar  = flag.Int("rack-parallelism", 0, "host-phase goroutines across the rack (<=1 = sequential; results identical)")
		clocking = flag.String("clocking", "event", "clock advance: event (skip dead cycles) or cycle (reference loop); results are identical")
		validate = flag.Bool("validate", false, "run the differential validation harness (DDR timing oracle + lifecycle invariants); observation-only")
		sampleD  = flag.Uint64("sample-detail", 0, "sampled simulation: detailed-window instructions per core (with -sample-ff)")
		sampleF  = flag.Uint64("sample-ff", 0, "sampled simulation: fast-forward gap instructions per core (with -sample-detail)")
		list     = flag.Bool("list", false, "list topologies and workloads")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, profErr := profiling.Start(*cpuProf, *memProf)
	if profErr != nil {
		fatalf("%v", profErr)
	}
	defer stopProf()

	if *list {
		fmt.Println("topologies (scale any with -hosts N):")
		for _, name := range coaxial.TopologyNames() {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("workloads:")
		fmt.Printf("  %s\n", strings.Join(coaxial.WorkloadNames(), " "))
		return
	}

	preset, err := coaxial.TopologyPresetByName(*cfgName)
	if err != nil {
		fatalf("%v", err)
	}
	if *hosts > 0 {
		preset = preset.WithHosts(*hosts)
	}
	for i := range preset.Rack.Hosts {
		cfg := preset.Rack.Hosts[i]
		if *cores > 0 {
			cfg = cfg.WithActiveCores(*cores)
		}
		switch *calmKind {
		case "":
		case "off":
			cfg = cfg.WithCALM(coaxial.CALMConfig{Kind: coaxial.CALMOff})
		case "calm-r":
			cfg = cfg.WithCALM(coaxial.CALMR(*calmR))
		case "map-i":
			cfg = cfg.WithCALM(coaxial.CALMConfig{Kind: coaxial.CALMMAPI})
		case "ideal":
			cfg = cfg.WithCALM(coaxial.CALMConfig{Kind: coaxial.CALMIdeal})
		default:
			fatalf("unknown CALM mechanism %q", *calmKind)
		}
		if *cxlNS > 0 {
			cfg = cfg.WithCXLPortNS(*cxlNS / 4)
		}
		preset.Rack.Hosts[i] = cfg
	}

	mode := coaxial.EventDriven
	switch *clocking {
	case "event":
	case "cycle":
		mode = coaxial.CycleByCycle
	default:
		fatalf("unknown clocking mode %q (want event or cycle)", *clocking)
	}
	opts := []coaxial.RunnerOption{
		coaxial.WithSeed(*seed),
		coaxial.WithWindows(0, *warmup, *measure),
		coaxial.WithClocking(mode),
		coaxial.WithParallelism(*par),
		coaxial.WithRackParallelism(*rackPar),
	}
	if *validate {
		opts = append(opts, coaxial.WithValidation())
	}
	if *sampleD > 0 || *sampleF > 0 {
		if *sampleD == 0 || *sampleF == 0 {
			fatalf("-sample-detail and -sample-ff must both be set")
		}
		opts = append(opts, coaxial.WithSampling(*sampleD, *sampleF))
	}
	runner := coaxial.NewRunner(opts...)

	// SIGINT stops the simulation cleanly at the next cycle-window boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// One host: the classic single-system path (bit-identical to a 1-host
	// rack, and faster). More: the rack path proper.
	if cfg, ok := preset.Single(); ok {
		res, err := runSingle(ctx, runner, cfg, *workload, *mix, *rackMix)
		if err != nil {
			fatalf("%v", err)
		}
		printResult(res)
		return
	}
	wls := make([][]coaxial.Workload, len(preset.Rack.Hosts))
	for h, cfg := range preset.Rack.Hosts {
		n := cfg.ActiveCores
		if n == 0 {
			n = cfg.Cores
		}
		switch {
		case *rackMix >= 0:
			wls[h] = coaxial.RackMixWorkloads(*rackMix+h, n)
		case *mix >= 0:
			wls[h] = coaxial.MixWorkloads(*mix+h, n)
		default:
			w, err := coaxial.WorkloadByName(*workload)
			if err != nil {
				fatalf("%v", err)
			}
			wls[h] = make([]coaxial.Workload, n)
			for i := range wls[h] {
				wls[h][i] = w
			}
		}
	}
	rr, err := runner.RunRack(ctx, preset.Rack, wls)
	if err != nil {
		fatalf("%v", err)
	}
	printRackResult(rr)
}

func runSingle(ctx context.Context, runner *coaxial.Runner, cfg coaxial.Config, workload string, mix, rackMix int) (coaxial.Result, error) {
	switch {
	case rackMix >= 0:
		return runner.RunMix(ctx, cfg, coaxial.RackMixWorkloads(rackMix, cfg.Cores))
	case mix >= 0:
		return runner.RunMix(ctx, cfg, coaxial.MixWorkloads(mix, cfg.Cores))
	default:
		w, err := coaxial.WorkloadByName(workload)
		if err != nil {
			return coaxial.Result{}, err
		}
		return runner.Run(ctx, cfg, w)
	}
}

func printResult(r coaxial.Result) {
	fmt.Printf("config:    %s\n", r.Config)
	fmt.Printf("workload:  %s\n", r.Workload)
	fmt.Printf("cycles:    %d (%.1f us)\n", r.Cycles, float64(r.Cycles)/2400)
	fmt.Printf("IPC:       %.3f (CPI %.2f) over %d retired instructions\n", r.IPC, r.CPI, r.Retired)
	fmt.Printf("L2-miss latency: %.0f ns = onchip %.0f + queue %.0f + dram %.0f + cxl %.0f\n",
		r.TotalNS, r.OnChipNS, r.QueueNS, r.ServiceNS, r.CXLNS)
	fmt.Printf("latency percentiles: p50 %.0f ns, p90 %.0f ns, p99 %.0f ns\n", r.P50NS, r.P90NS, r.P99NS)
	fmt.Printf("bandwidth: read %.1f GB/s + write %.1f GB/s = %.1f of %.1f GB/s peak (%.0f%%)\n",
		r.ReadGBs, r.WriteGBs, r.ReadGBs+r.WriteGBs, r.PeakGBs, r.Utilization*100)
	fmt.Printf("LLC:       MPKI %.1f, miss ratio %.0f%%\n", r.LLCMPKI, r.LLCMissRatio*100)
	fmt.Printf("DRAM:      ACT %d PRE %d RD %d WR %d REF %d (row hits %d / misses %d)\n",
		r.DRAM.ACT, r.DRAM.PRE, r.DRAM.RD, r.DRAM.WR, r.DRAM.REF, r.DRAM.RowHits, r.DRAM.RowMisses)
	e := coaxial.DRAMEnergyOf(r)
	fmt.Printf("DRAM energy: %.1f uJ (act %.0f%%, rd %.0f%%, wr %.0f%%, ref %.0f%%, bg %.0f%%) = %.2f W avg\n",
		e.TotalPJ()/1e6,
		100*e.ActivatePJ/e.TotalPJ(), 100*e.ReadPJ/e.TotalPJ(), 100*e.WritePJ/e.TotalPJ(),
		100*e.RefreshPJ/e.TotalPJ(), 100*e.BackgroundPJ/e.TotalPJ(), e.AveragePowerW(r.Cycles))
	d := r.CALM
	if d.L2Misses > 0 {
		fmt.Printf("CALM:      %d L2 misses, %d CALMed (FP %.1f%% of mem accesses, FN %.1f%% of LLC misses)\n",
			d.L2Misses, d.CALMed, d.FPRate()*100, d.FNRate()*100)
	}
}

func printRackResult(r coaxial.RackResult) {
	fmt.Printf("rack:      %s (%d hosts, %d pooled devices)\n", r.Config, len(r.Hosts), len(r.Devices))
	fmt.Printf("cycles:    %d (%.1f us)\n", r.Cycles, float64(r.Cycles)/2400)
	fmt.Printf("IPC:       mean %.3f, geomean %.3f, fairness %.3f\n", r.MeanIPC, r.GeomeanIPC, r.FairnessIndex)
	for h, hr := range r.Hosts {
		fmt.Printf("host %d:    IPC %.3f (%s), L2-miss %.0f ns (queue %.0f), %.1f GB/s, %d retired\n",
			h, hr.IPC, hr.Workload, hr.TotalNS, hr.QueueNS, hr.ReadGBs+hr.WriteGBs, hr.Retired)
	}
	for _, d := range r.Devices {
		fmt.Printf("device %s: queue p50 %.0f / p90 %.0f / p99 %.0f ns, %.1f of %.1f GB/s\n",
			d.Name, d.QueueP50NS, d.QueueP90NS, d.QueueP99NS, d.ReadGBs+d.WriteGBs, d.PeakGBs)
		var shares []string
		for h := range d.HostReadBytes {
			shares = append(shares, fmt.Sprintf("host %d %.1f MB", h,
				float64(d.HostReadBytes[h]+d.HostWriteBytes[h])/1e6))
		}
		fmt.Printf("           traffic: %s\n", strings.Join(shares, ", "))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "coaxial-sim: "+format+"\n", args...)
	os.Exit(1)
}
