package coaxial_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"coaxial"
)

// TestRunRackCancelReturnsPartialHosts pins the rack-scale cancellation
// contract the serve daemon depends on: canceling mid-measure propagates
// between host phases to the RunRack caller, which still receives partial
// per-host measurements (previously only single-system cancellation was
// pinned). The new RunConfig.OnProgress hook triggers the cancel
// deterministically — at the first measure-phase poll boundary — instead
// of racing a timer against the simulation.
func TestRunRackCancelReturnsPartialHosts(t *testing.T) {
	const hosts = 2
	topo := coaxial.TopologyCoaxialPooled(hosts)
	w, err := coaxial.WorkloadByName("stream-copy")
	if err != nil {
		t.Fatal(err)
	}
	workloads := make([][]coaxial.Workload, hosts)
	for h := range workloads {
		wl := make([]coaxial.Workload, topo.Rack.Hosts[h].Cores)
		for i := range wl {
			wl[i] = w
		}
		workloads[h] = wl
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	rc := coaxial.DefaultRunConfig()
	rc.FunctionalWarmupInstr = 20_000
	rc.WarmupInstr = 0
	// A window far too large to finish: only cancellation can end the run.
	rc.MeasureInstr = 100_000_000
	var observed coaxial.Progress
	rc.OnProgress = func(p coaxial.Progress) {
		if p.Phase == "measure" && p.Cycles > 0 {
			observed = p
			once.Do(cancel)
		}
	}

	res, err := coaxial.NewRunner(coaxial.WithRunConfig(rc)).RunRack(ctx, topo.Rack, workloads)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunRack error = %v, want wrapped context.Canceled", err)
	}
	if observed.Target != rc.MeasureInstr {
		t.Fatalf("progress target = %d, want the measure window %d", observed.Target, rc.MeasureInstr)
	}

	// Partial per-host results: every host reports a real, short window.
	if len(res.Hosts) != hosts {
		t.Fatalf("partial rack result has %d hosts, want %d", len(res.Hosts), hosts)
	}
	for h, hr := range res.Hosts {
		if hr.Cycles <= 0 {
			t.Fatalf("host %d partial result has no cycles", h)
		}
		if hr.Retired == 0 || hr.Retired >= rc.MeasureInstr {
			t.Fatalf("host %d retired %d, want a genuine partial window (0, %d)", h, hr.Retired, rc.MeasureInstr)
		}
	}
	// The summary the serve layer returns to clients aggregates the same
	// partial window.
	if sum := res.Summary(); sum.Cycles <= 0 || len(sum.PerCoreIPC) != hosts*topo.Rack.Hosts[0].Cores {
		t.Fatalf("partial summary malformed: cycles=%d percore=%d", sum.Cycles, len(sum.PerCoreIPC))
	}
}
