# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make check` is the full pre-push gate.

GO ?= go

.PHONY: build test race lint lint-baseline vet golden check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# lint runs coaxlint (internal/lint): determinism, phase-isolation,
# counter-hygiene, and observer-purity invariants, plus unitcheck's
# flow-sensitive clock-domain/dimension analysis (DESIGN.md §6). Findings
# listed in .coaxlint.baseline (if present) are pre-existing and accepted;
# only new violations fail. Add -json for machine-readable output.
lint:
	$(GO) run ./cmd/coaxial-lint ./...

# lint-baseline regenerates the accepted-findings baseline. Run it only
# after deliberately accepting current findings, and review the diff.
lint-baseline:
	$(GO) run ./cmd/coaxial-lint -write-baseline ./...

# golden regenerates the golden result corpus after an intentional change
# to simulated numbers. Review the testdata/golden diff like code.
golden:
	$(GO) test -run TestGoldenResults -update .

check: vet lint build test
