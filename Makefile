# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); `make check` is the full pre-push gate.

GO ?= go

.PHONY: build test race serve-test lint lint-baseline lint-mutations vet golden check bench perf-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# serve-test runs the simulation-service suite under the race detector
# (DESIGN.md §9): concurrent determinism against direct Runner runs,
# single-flight collapse, cancellation partials, queue backpressure,
# graceful shutdown, the job storm, and the rack-cancellation contract
# the daemon depends on.
serve-test:
	$(GO) test -race -count=1 ./internal/serve/
	$(GO) test -race -count=1 -run 'TestRunRackCancelReturnsPartialHosts' .

# lint runs coaxlint (internal/lint): determinism, phase-isolation,
# counter-hygiene, and observer-purity invariants, plus unitcheck's
# flow-sensitive clock-domain/dimension analysis, lockcheck's lock-set
# analysis, and handlecheck's arena-handle lifetime analysis
# (DESIGN.md §6). Findings
# listed in .coaxlint.baseline (if present) are pre-existing and accepted;
# only new violations fail. Add -json for machine-readable output.
lint:
	$(GO) run ./cmd/coaxial-lint ./...

# lint-baseline regenerates the accepted-findings baseline. Run it only
# after deliberately accepting current findings, and review the diff.
lint-baseline:
	$(GO) run ./cmd/coaxial-lint -write-baseline ./...

# lint-mutations proves the analyzers still catch what they exist to
# catch: each suite plants real bugs (dimension slips, dropped unlocks,
# reordered arena releases, deleted ownership annotations) into the
# shipping sources via a load-time overlay and fails if any survive.
lint-mutations:
	$(GO) test -count=1 -run 'TestUnitCheckMutations|TestLockCheckMutations|TestHandleCheckMutations|TestAllocCheckMutations' ./internal/lint/

# golden regenerates the golden result corpus after an intentional change
# to simulated numbers. Review the testdata/golden diff like code.
golden:
	$(GO) test -run TestGoldenResults -update .

# bench regenerates the performance snapshot (BENCH_OUT) in the
# BENCH_pr<N>.json schema via cmd/coaxial-bench: per-step benchmarks at a
# fixed iteration count, experiment-window benchmarks repeated so the
# fastest (least noise-polluted) run is recorded. Override BENCH_PR /
# BENCH_NOTE / BENCH_OUT when cutting a new snapshot; keep the note honest
# about what changed and how the numbers were taken.
BENCH_PR   ?= 10
BENCH_OUT  ?= BENCH_pr10.json
BENCH_BASE ?= BENCH_pr7.json
BENCH_NOTE ?= regenerated locally; see the checked-in snapshot for the PR-cut note
bench:
	@( $(GO) test -run '^$$' -bench 'BenchmarkSystemStep(Idle|Loaded)$$' -benchtime 2000000x -benchmem . ; \
	   $(GO) test -run '^$$' -bench 'BenchmarkRunWindow$$|BenchmarkRunWindowLoaded$$|BenchmarkRunWindowLoadedSampled$$|BenchmarkRunWindowPooled$$|BenchmarkRunWindowRack$$' -benchtime 15x -count 2 -benchmem . ) \
	 | tee /dev/stderr \
	 | $(GO) run ./cmd/coaxial-bench -pr $(BENCH_PR) -baseline $(BENCH_BASE) -note '$(BENCH_NOTE)' > $(BENCH_OUT)
	@echo wrote $(BENCH_OUT)

# perf-smoke is CI's hot-path regression tripwire: the loaded-window
# benchmark at reduced iterations must stay within 2x of the checked-in
# snapshot, in both time and (via -benchmem) allocations per op.
# Deliberately loose so scheduler noise does not flake the build.
perf-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkRunWindowLoaded$$' -benchtime 3x -count 2 -benchmem . \
	 | $(GO) run ./cmd/coaxial-bench -check $(BENCH_OUT) -factor 2 -alloc-factor 2

check: vet lint build test
