package coaxial

import (
	"bytes"
	"strings"
	"testing"
)

// tinyRC makes driver tests fast; statistical quality doesn't matter here,
// only that the drivers wire experiments correctly.
func tinyRC() RunConfig {
	rc := DefaultRunConfig()
	rc.WarmupInstr, rc.MeasureInstr = 3_000, 12_000
	return rc
}

func oneWorkload(t *testing.T, name string) []Workload {
	t.Helper()
	w, err := WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return []Workload{w}
}

func TestFig6MixesDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation driver")
	}
	rows, err := Fig6Mixes(2, tinyRC())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Names) != 12 {
			t.Errorf("mix %d has %d names", r.Mix, len(r.Names))
		}
		if r.Speedup <= 0 || r.MeanIPCx <= 0 {
			t.Errorf("mix %d: speedup %v / %v", r.Mix, r.Speedup, r.MeanIPCx)
		}
		// Mixes load the baseline heavily; COAXIAL should win.
		if r.Speedup < 1.0 {
			t.Errorf("mix %d: COAXIAL lost (%.2fx); paper reports 1.5-1.9x", r.Mix, r.Speedup)
		}
	}
	var buf bytes.Buffer
	ReportFig6(&buf, rows)
	if !strings.Contains(buf.String(), "mix0") {
		t.Error("Fig. 6 render")
	}
}

func TestFig7CALMDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation driver")
	}
	rows, err := Fig7CALM(oneWorkload(t, "stream-scale"), tinyRC())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	nv := len(Fig7Variants())
	if len(r.BaseSpeedup) != nv || len(r.CoaxSpeedup) != nv || len(r.CoaxDecisions) != nv {
		t.Fatalf("variant vectors: %d/%d/%d", len(r.BaseSpeedup), len(r.CoaxSpeedup), len(r.CoaxDecisions))
	}
	// Variant 0 is serial baseline: its baseline speedup is 1.0 by
	// definition.
	if r.BaseSpeedup[0] < 0.99 || r.BaseSpeedup[0] > 1.01 {
		t.Errorf("serial-baseline self-speedup = %v", r.BaseSpeedup[0])
	}
	// COAXIAL must beat the baseline on a stream for every mechanism.
	for i, s := range r.CoaxSpeedup {
		if s < 1.2 {
			t.Errorf("variant %d: COAXIAL speedup %.2f on stream-scale", i, s)
		}
	}
	// The serial variant must CALM nothing.
	if r.CoaxDecisions[0].CALMed != 0 {
		t.Error("serial variant CALMed accesses")
	}
	var buf bytes.Buffer
	ReportFig7(&buf, rows)
	if !strings.Contains(buf.String(), "Fig. 7b") {
		t.Error("Fig. 7 render")
	}
}

func TestFig8Driver(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation driver")
	}
	rows, err := Fig8Configs(oneWorkload(t, "stream-add"), tinyRC())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Speedup4 <= r.Speedup2*0.9 {
		t.Errorf("4x (%.2f) should generally beat 2x (%.2f) on streams", r.Speedup4, r.Speedup2)
	}
	if r.SpeedupA < r.Speedup4*0.9 {
		t.Errorf("asym (%.2f) should not trail 4x (%.2f) badly", r.SpeedupA, r.Speedup4)
	}
	var buf bytes.Buffer
	ReportFig8(&buf, rows)
	if !strings.Contains(buf.String(), "variants") {
		t.Error("Fig. 8 render")
	}
}

func TestFig10Driver(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation driver")
	}
	rows, err := Fig10LatencySensitivity(oneWorkload(t, "stream-copy"), tinyRC())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if !(r.Speedup10 >= r.Speedup50*0.98 && r.Speedup50 >= r.Speedup70*0.98) {
		t.Errorf("premium ordering: 10ns %.2f / 50ns %.2f / 70ns %.2f",
			r.Speedup10, r.Speedup50, r.Speedup70)
	}
	var buf bytes.Buffer
	ReportFig10(&buf, rows)
	if !strings.Contains(buf.String(), "latency premium") {
		t.Error("Fig. 10 render")
	}
}

func TestFig11Driver(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation driver")
	}
	rows, err := Fig11Utilization(oneWorkload(t, "Components"), tinyRC())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// Gains must grow with utilization on a bandwidth-bound workload.
	if r.Speedups[3] <= r.Speedups[0] {
		t.Errorf("12-core speedup (%.2f) should exceed 1-core (%.2f)",
			r.Speedups[3], r.Speedups[0])
	}
	var buf bytes.Buffer
	ReportFig11(&buf, rows)
	if !strings.Contains(buf.String(), "active cores") {
		t.Error("Fig. 11 render")
	}
}

func TestMainResultsErrorPropagation(t *testing.T) {
	bad := Workload{} // zero workload: zero measure would be fine, but
	// MemFrac 0 still runs; instead break the config.
	cfg := Baseline()
	cfg.Cores = 0
	if _, err := ComparePair(cfg, Coaxial4x(), []Workload{bad}, tinyRC()); err == nil {
		t.Error("invalid config not propagated")
	}
}

func TestRunAblationsBundle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation driver")
	}
	w, _ := WorkloadByName("stream-scale")
	rc := tinyRC()
	sum, err := RunAblations(w, rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Capacity) == 0 || len(sum.Channels) != 5 || len(sum.CALM) != 6 || len(sum.MSHRs) != 4 {
		t.Fatalf("bundle sizes: %d/%d/%d/%d", len(sum.Capacity), len(sum.Channels), len(sum.CALM), len(sum.MSHRs))
	}
	var buf bytes.Buffer
	ReportAblations(&buf, sum)
	for _, s := range []string{"iso-capacity", "channel count", "CALM_R threshold", "MSHR budget"} {
		if !strings.Contains(buf.String(), s) {
			t.Errorf("ablation report missing %q", s)
		}
	}
}
