package coaxial_test

import (
	"bytes"
	"fmt"
	"log"

	"coaxial"
)

// The smallest complete use of the library: compare the DDR baseline
// against COAXIAL-4x on one workload.
func Example() {
	w, err := coaxial.WorkloadByName("stream-copy")
	if err != nil {
		log.Fatal(err)
	}
	rc := coaxial.DefaultRunConfig()
	rc.WarmupInstr, rc.MeasureInstr = 5_000, 20_000

	base, _ := coaxial.Run(coaxial.Baseline(), w, rc)
	coax, _ := coaxial.Run(coaxial.Coaxial4x(), w, rc)
	if coaxial.Speedup(coax, base) > 1 {
		fmt.Println("COAXIAL wins on stream-copy")
	}
	// Output: COAXIAL wins on stream-copy
}

// Deriving the Table II configuration space needs no simulation.
func ExampleTableIIConfigs() {
	for _, c := range coaxial.TableIIConfigs() {
		if c.Name == "COAXIAL-4x" {
			fmt.Printf("%s: %.0fx bandwidth at %.2fx area\n",
				c.Name, c.RelativeMemBW(), c.RelativeArea())
		}
	}
	// Output: COAXIAL-4x: 4x bandwidth at 1.01x area
}

// Custom workloads plug into the same Run API through WorkloadParams.
func ExampleRun_customWorkload() {
	w := coaxial.Workload{Params: coaxial.WorkloadParams{
		Name:       "my-scan",
		MemFrac:    0.4,
		StoreFrac:  0.1,
		WSBytes:    64 << 20,
		StreamFrac: 1.0,
	}}
	rc := coaxial.DefaultRunConfig()
	rc.WarmupInstr, rc.MeasureInstr = 5_000, 20_000
	res, err := coaxial.Run(coaxial.Coaxial4x(), w, rc)
	if err != nil {
		log.Fatal(err)
	}
	if res.IPC > 0 {
		fmt.Println("custom workload simulated")
	}
	// Output: custom workload simulated
}

// Traces record once and replay deterministically.
func ExampleRecordTrace() {
	w, _ := coaxial.WorkloadByName("pop2")
	var buf bytes.Buffer
	if err := coaxial.RecordTrace(&buf, w, 0, 10_000, 1); err != nil {
		log.Fatal(err)
	}
	g, err := coaxial.OpenTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	var ins coaxial.Instr
	g.Next(&ins)
	fmt.Println(g.Name())
	// Output: pop2
}
