package coaxial

import (
	"fmt"
	"io"

	"coaxial/internal/sim"
	"coaxial/internal/trace"
)

// Trace recording and replay: instruction streams can be captured once
// (RecordTrace) into a compact binary format and replayed deterministically
// (RunTraces) — the workflow of the paper's ChampSim-trace-based artifact,
// and an interoperability point for non-Go workload tooling.

// Generator re-exports the instruction source interface.
type Generator = trace.Generator

// Instr re-exports the instruction record.
type Instr = trace.Instr

// NewSyntheticGenerator builds the standard parameterized generator for
// custom workloads; base is the instance's address-space base and seed
// determinizes the stream.
func NewSyntheticGenerator(p WorkloadParams, base, seed uint64) Generator {
	return trace.NewSynthetic(p, base, seed)
}

// RecordTrace captures n instructions of workload w (instance `core`,
// seeded as the simulator would seed it) into out. The trace replays
// byte-identically with OpenTrace.
func RecordTrace(out io.Writer, w Workload, core int, n uint64, seed uint64) error {
	if core < 0 {
		return fmt.Errorf("coaxial: negative core index")
	}
	base := (uint64(core) + 1) << 40
	gen := trace.NewSynthetic(w.Params, base, seed*1_000_003+uint64(core)+1)
	return trace.Record(out, gen, n)
}

// RecordGeneratorTrace captures n instructions from any Generator.
func RecordGeneratorTrace(out io.Writer, g Generator, n uint64) error {
	return trace.Record(out, g, n)
}

// OpenTrace wraps a recorded trace as a replayable Generator. Pass an
// io.ReadSeeker so the trace loops when the simulation outlasts it.
func OpenTrace(r io.Reader) (Generator, error) {
	return trace.NewReader(r)
}

// RunGenerators executes one experiment over caller-provided generators
// (one per active core). hints, when non-nil, supplies per-core workload
// parameters for LLC pre-fill and ILP caps; with nil hints, provide enough
// warmup inside the trace itself.
func RunGenerators(cfg Config, gens []Generator, hints []WorkloadParams, rc RunConfig) (Result, error) {
	return sim.RunGenerators(cfg, gens, hints, rc)
}

// RunTraces executes one experiment replaying one recorded trace per
// active core. hints as in RunGenerators.
func RunTraces(cfg Config, readers []io.ReadSeeker, hints []WorkloadParams, rc RunConfig) (Result, error) {
	gens := make([]Generator, len(readers))
	for i, r := range readers {
		g, err := OpenTrace(r)
		if err != nil {
			return Result{}, fmt.Errorf("trace %d: %w", i, err)
		}
		gens[i] = g
	}
	return RunGenerators(cfg, gens, hints, rc)
}
