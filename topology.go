package coaxial

import (
	"fmt"

	"coaxial/internal/cxl"
	"coaxial/internal/rack"
	"coaxial/internal/sim"
	"coaxial/internal/stats"
)

// Rack-scale types, re-exported from the engine.
type (
	// RackConfig describes a multi-host topology: per-host system configs
	// plus the shared pooled CXL devices their channels attach to.
	RackConfig = rack.Config
	// RackResult aggregates one rack run: per-host Results plus rack-level
	// aggregates (geomean speedup inputs, fairness, pooled-queue tails).
	RackResult = rack.Result
	// RackDeviceStats summarizes one shared pooled device.
	RackDeviceStats = rack.DeviceStats
	// PooledDeviceConfig parameterizes one shared CXL type-3 pool device.
	PooledDeviceConfig = cxl.PooledDeviceConfig
)

// RackHostSeed derives host h's workload seed from the rack seed (host 0
// keeps it unchanged — the single-host identity).
func RackHostSeed(seed uint64, h int) uint64 { return rack.HostSeed(seed, h) }

// TopologyPreset is a constructed host-level topology: the unit the
// simulator runs is no longer "a Config" but "a rack of one or more
// hosts, possibly sharing pooled devices". The classic single-system
// presets are racks of one uncoupled host; CoaxialPooled generalizes to N
// hosts contending for the same pool devices.
//
// Presets are plain values — mutate the embedded Rack freely before
// running it.
type TopologyPreset struct {
	// Name is the preset's canonical name ("coaxial-pooled@4h", ...).
	Name string
	// Rack is the full topology.
	Rack RackConfig
}

// Single returns the preset's host Config when the topology is exactly
// one host (ok false otherwise): the path existing single-system drivers
// take. A 1-host pooled topology is bit-identical either way (pinned by
// TestRackClockingEquivalence), so collapsing it to the faster
// single-system path preserves results exactly.
func (p TopologyPreset) Single() (Config, bool) {
	if len(p.Rack.Hosts) == 1 {
		return p.Rack.Hosts[0], true
	}
	return Config{}, false
}

// WithHosts returns the preset scaled to n hosts: host 0's Config
// replicated n times over the same pooled devices. For pooled topologies
// the device count stays fixed, so contention grows with n (the rack
// experiment); for device-less presets the hosts merely run in lockstep,
// uncoupled — a rack-shaped baseline for fairness comparisons.
func (p TopologyPreset) WithHosts(n int) TopologyPreset {
	if n < 1 || len(p.Rack.Hosts) == 0 {
		return p
	}
	base := p.Rack.Hosts[0].Name
	name := base
	if n > 1 {
		name = fmt.Sprintf("%s@%dh", base, n)
	}
	out := TopologyPreset{Name: name, Rack: RackConfig{Name: name, Pooled: p.Rack.Pooled}}
	for h := 0; h < n; h++ {
		out.Rack.Hosts = append(out.Rack.Hosts, p.Rack.Hosts[0])
	}
	return out
}

// singleTopology wraps a single-system preset as a 1-host rack.
func singleTopology(cfg Config) TopologyPreset {
	return TopologyPreset{Name: cfg.Name, Rack: RackConfig{Name: cfg.Name, Hosts: []Config{cfg}}}
}

// TopologyDDRBaseline is the DDR-based server as a 1-host topology.
func TopologyDDRBaseline() TopologyPreset { return singleTopology(sim.Baseline()) }

// TopologyCoaxial2x is the 2x-bandwidth COAXIAL variant as a topology.
func TopologyCoaxial2x() TopologyPreset { return singleTopology(sim.Coaxial2x()) }

// TopologyCoaxial4x is the default COAXIAL system as a topology.
func TopologyCoaxial4x() TopologyPreset { return singleTopology(sim.Coaxial4x()) }

// TopologyCoaxial5x is the iso-pin COAXIAL variant as a topology.
func TopologyCoaxial5x() TopologyPreset { return singleTopology(sim.Coaxial5x()) }

// TopologyCoaxialAsym is the asymmetric-lane variant as a topology.
func TopologyCoaxialAsym() TopologyPreset { return singleTopology(sim.CoaxialAsym()) }

// TopologyCoaxialPooled is the rack topology proper: `hosts` CoaxialPooled
// hosts whose CXL channels all land on shared pool devices — one device
// per host channel, each fronting the preset's per-device DDR channels —
// so every device is contended by all hosts. hosts < 1 is treated as 1;
// the 1-host topology reproduces the single-system CoaxialPooled preset
// bit-for-bit.
func TopologyCoaxialPooled(hosts int) TopologyPreset {
	if hosts < 1 {
		hosts = 1
	}
	host := sim.CoaxialPooled()
	p := TopologyPreset{Name: host.Name, Rack: RackConfig{Name: host.Name, Hosts: []Config{host}}}
	for ch := 0; ch < host.Channels; ch++ {
		p.Rack.Pooled = append(p.Rack.Pooled, PooledDeviceConfig{
			Name:        fmt.Sprintf("pool%d", ch),
			DDR:         host.DDR,
			DDRChannels: host.CXL.DDRChannels,
		})
	}
	return p.WithHosts(hosts)
}

// topologyPresets is the canonical preset list, in Table II order.
var topologyPresets = []struct {
	name string
	make func() TopologyPreset
}{
	{"ddr-baseline", TopologyDDRBaseline},
	{"coaxial-2x", TopologyCoaxial2x},
	{"coaxial-4x", TopologyCoaxial4x},
	{"coaxial-5x", TopologyCoaxial5x},
	{"coaxial-asym", TopologyCoaxialAsym},
	{"coaxial-pooled", func() TopologyPreset { return TopologyCoaxialPooled(1) }},
}

// TopologyNames returns the canonical preset names in Table II order.
func TopologyNames() []string {
	names := make([]string, len(topologyPresets))
	for i, p := range topologyPresets {
		names[i] = p.name
	}
	return names
}

// TopologyPresetByName resolves a preset by its canonical name.
//
// Deprecated: the stringly-typed lookup exists for CLI flag parsing and
// callers migrating from the old per-CLI `configs` maps; new code should
// call the typed constructors (TopologyDDRBaseline, TopologyCoaxial4x,
// TopologyCoaxialPooled, ...) directly. The alias is pinned equivalent to
// the constructors by TestTopologyPresetAliases.
func TopologyPresetByName(name string) (TopologyPreset, error) {
	for _, p := range topologyPresets {
		if p.name == name {
			return p.make(), nil
		}
	}
	return TopologyPreset{}, fmt.Errorf("coaxial: unknown topology preset %q (have %v)", name, TopologyNames())
}

// RackSpeedup returns the geometric mean over hosts of the per-host IPC
// ratio of res over base — the rack-level headline speedup. The racks
// must have the same host count.
func RackSpeedup(res, base RackResult) float64 {
	if len(res.Hosts) == 0 || len(res.Hosts) != len(base.Hosts) {
		return 0
	}
	ratios := make([]float64, 0, len(res.Hosts))
	for i := range res.Hosts {
		if base.Hosts[i].IPC <= 0 {
			return 0
		}
		ratios = append(ratios, res.Hosts[i].IPC/base.Hosts[i].IPC)
	}
	return stats.Geomean(ratios)
}
