package coaxial

import (
	"bytes"
	"strings"
	"testing"
)

func quickRC() RunConfig {
	rc := DefaultRunConfig()
	rc.WarmupInstr, rc.MeasureInstr = 6_000, 25_000
	return rc
}

func TestPublicAPISurface(t *testing.T) {
	if len(Workloads()) != 36 {
		t.Errorf("suite size %d", len(Workloads()))
	}
	if len(WorkloadNames()) != 36 {
		t.Errorf("names size %d", len(WorkloadNames()))
	}
	if _, err := WorkloadByName("lbm"); err != nil {
		t.Error(err)
	}
	if _, err := WorkloadByName("bogus"); err == nil {
		t.Error("bogus workload accepted")
	}
	if got := len(MixWorkloads(0, 12)); got != 12 {
		t.Errorf("mix size %d", got)
	}
	if DefaultCALM().Kind != CALMRegulated || DefaultCALM().R != 0.70 {
		t.Error("default CALM")
	}
	if CALMR(0.5).R != 0.5 {
		t.Error("CALMR")
	}
}

func TestRunAndSpeedupHelpers(t *testing.T) {
	w, _ := WorkloadByName("stream-scale")
	base, err := Run(Baseline(), w, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	coax, err := Run(Coaxial4x(), w, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	if s := Speedup(coax, base); s < 1.5 {
		t.Errorf("stream-scale speedup %.2f, expected >1.5", s)
	}
	if Speedup(coax, Result{}) != 0 {
		t.Error("zero-base speedup guard")
	}
	g := PerCoreSpeedupGeomean(coax, base)
	if g < 1.2 {
		t.Errorf("per-core geomean %.2f", g)
	}
	if PerCoreSpeedupGeomean(coax, Result{}) != 0 {
		t.Error("mismatched per-core speedup guard")
	}
}

func TestRunSuitePreservesOrder(t *testing.T) {
	w1, _ := WorkloadByName("pop2")
	w2, _ := WorkloadByName("raytrace")
	jobs := []SuiteJob{
		{Config: Baseline(), Workload: w1},
		{Config: Baseline(), Workload: w2},
		{Config: Coaxial2x(), Workload: w1},
	}
	results, errs := RunSuite(jobs, quickRC())
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if results[0].Workload != "pop2" || results[1].Workload != "raytrace" {
		t.Errorf("order broken: %s, %s", results[0].Workload, results[1].Workload)
	}
	if results[2].Config != "coaxial-2x" {
		t.Errorf("config mismatch: %s", results[2].Config)
	}
}

func TestComparePair(t *testing.T) {
	w, _ := WorkloadByName("stream-copy")
	rows, err := ComparePair(Baseline(), Coaxial4x(), []Workload{w}, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Workload != "stream-copy" {
		t.Fatalf("rows: %+v", rows)
	}
	if rows[0].Speedup < 1.5 {
		t.Errorf("speedup %.2f", rows[0].Speedup)
	}
	if MeanSpeedup(rows) != rows[0].Speedup || GeomeanSpeedup(rows) != rows[0].Speedup {
		t.Error("aggregations over one row must equal it")
	}
}

func TestTableVPowerFromRows(t *testing.T) {
	rows := []PairRow{{
		Base: Result{CPI: 2.05, Utilization: 0.54},
		Coax: Result{CPI: 1.48, Utilization: 0.17},
	}}
	base, coax := TableVPower(rows)
	if base.Ledger.TotalW() < 550 || base.Ledger.TotalW() > 720 {
		t.Errorf("baseline power %v", base.Ledger.TotalW())
	}
	if coax.Metrics.RelEDP >= 1 {
		t.Errorf("COAXIAL EDP should improve: %v", coax.Metrics.RelEDP)
	}
	if coax.Metrics.RelED2P >= coax.Metrics.RelEDP {
		t.Errorf("ED2P should improve more than EDP: %v vs %v",
			coax.Metrics.RelED2P, coax.Metrics.RelEDP)
	}
}

func TestStaticReports(t *testing.T) {
	var buf bytes.Buffer
	ReportFig1(&buf)
	out := buf.String()
	if !strings.Contains(out, "PCIe-5.0") || !strings.Contains(out, "DDR5-4800") {
		t.Error("Fig. 1 output incomplete")
	}
	buf.Reset()
	ReportTableI(&buf)
	if !strings.Contains(buf.String(), "DDR channel") {
		t.Error("Table I output incomplete")
	}
	buf.Reset()
	ReportTableII(&buf)
	out = buf.String()
	for _, name := range []string{"DDR-based", "COAXIAL-5x", "COAXIAL-2x", "COAXIAL-4x", "COAXIAL-asym"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table II missing %s", name)
		}
	}
}

func TestDynamicReportsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	w, _ := WorkloadByName("stream-copy")
	rows, err := MainResults([]Workload{w}, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ReportFig2b(&buf, rows)
	ReportFig5(&buf, rows)
	ReportFig9(&buf, rows)
	ReportTableIV(&buf, rows, []Workload{w})
	b, c := TableVPower(rows)
	ReportTableV(&buf, b, c)
	out := buf.String()
	for _, s := range []string{"Fig. 2b", "Fig. 5", "Fig. 9", "Table IV", "Table V", "stream-copy"} {
		if !strings.Contains(out, s) {
			t.Errorf("rendered reports missing %q", s)
		}
	}
}

func TestFig2aAPI(t *testing.T) {
	pts, err := Fig2aLoadLatency([]float64{0.1, 0.5}, 200, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1].MeanNS < pts[0].MeanNS {
		t.Errorf("load-latency points: %+v", pts)
	}
	var buf bytes.Buffer
	ReportFig2a(&buf, pts)
	if !strings.Contains(buf.String(), "load-latency") {
		t.Error("Fig. 2a render")
	}
}

func TestFig7VariantsComplete(t *testing.T) {
	vs := Fig7Variants()
	if len(vs) != 6 {
		t.Fatalf("variants: %d", len(vs))
	}
	labels := map[string]bool{}
	for _, v := range vs {
		labels[v.Label] = true
	}
	for _, want := range []string{"serial", "map-i", "calm-50", "calm-60", "calm-70", "ideal"} {
		if !labels[want] {
			t.Errorf("missing variant %s", want)
		}
	}
}

func TestRepresentativeWorkloads(t *testing.T) {
	reps := RepresentativeWorkloads()
	if len(reps) < 4 {
		t.Fatalf("too few representative workloads: %d", len(reps))
	}
	suites := map[string]bool{}
	for _, w := range reps {
		suites[string(w.Suite)] = true
	}
	if len(suites) < 3 {
		t.Errorf("representatives cover only %d suites", len(suites))
	}
}

func TestFig11ActiveCores(t *testing.T) {
	if Fig11ActiveCores() != [4]int{1, 4, 8, 12} {
		t.Error("Fig. 11 core counts")
	}
}

func TestReportTableIII(t *testing.T) {
	var buf bytes.Buffer
	ReportTableIII(&buf)
	out := buf.String()
	for _, s := range []string{"Table III", "DDR5-4800", "256-entry ROB", "mesh"} {
		if !strings.Contains(out, s) {
			t.Errorf("Table III missing %q", s)
		}
	}
}

func TestDRAMEnergyOf(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	w, _ := WorkloadByName("stream-copy")
	res, err := Run(Baseline(), w, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	e := DRAMEnergyOf(res)
	if e.TotalPJ() <= 0 {
		t.Fatal("no energy integrated")
	}
	p := e.AveragePowerW(res.Cycles)
	// One loaded DDR5 channel's DRAM devices: ~1-10 W.
	if p < 0.5 || p > 12 {
		t.Errorf("channel DRAM power %.2f W implausible", p)
	}
	// Dynamic energy should dominate at 80%+ utilization.
	if e.BackgroundPJ > e.TotalPJ()/2 {
		t.Error("background dominates despite heavy load")
	}
}

func TestRunSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	w, _ := WorkloadByName("pop2")
	rc := RunConfig{WarmupInstr: 2_000, MeasureInstr: 10_000}
	st, err := RunSeeds(Baseline(), w, rc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Results) != 3 || st.MeanIPC <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Seeds differ, so some variance; but it should be small relative to
	// the mean for a stationary workload.
	if st.StdIPC > st.MeanIPC*0.2 {
		t.Errorf("seed variance suspiciously high: mean %.3f std %.3f", st.MeanIPC, st.StdIPC)
	}
	if st.StdIPC == 0 {
		t.Error("distinct seeds produced identical IPCs")
	}
}
