module coaxial

go 1.22
