package coaxial

import (
	"context"
	"testing"
)

// TestLoadedWindowAllocBudget pins the steady-state allocation count of a
// warm loaded experiment window (the BenchmarkRunWindowLoaded configuration:
// 12 cores, COAXIAL-4x, mix 3). With the request arena recycling memory
// requests and the SoA hot state reused across windows, a warm window
// allocates on the order of 1k objects (system construction and cache
// cloning); the budget below is an order-of-magnitude tripwire for
// reintroduced per-request or per-cycle allocation, not a tight bound.
func TestLoadedWindowAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window run in -short mode")
	}
	cfg := Coaxial4x()
	wl := MixWorkloads(3, 12)
	r := NewRunner(WithSeed(1), WithWindows(100_000, 5_000, 60_000))
	ctx := context.Background()
	// Prime the warm snapshot so the measured runs hit the sweep steady
	// state (see benchRunWindowWarm).
	if _, err := r.RunMix(ctx, cfg, wl); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := r.RunMix(ctx, cfg, wl); err != nil {
			t.Fatal(err)
		}
	})
	// Observed ~1.1k on a warm window with alloccheck-clean hot paths;
	// 2k leaves headroom for cache-clone jitter while still tripping on
	// any reintroduced per-request allocation (60k requests/window).
	const budget = 2_000
	if allocs > budget {
		t.Errorf("warm loaded window allocated %.0f objects, budget %d", allocs, budget)
	}
	t.Logf("warm loaded window: %.0f allocs (budget %d)", allocs, budget)
}
