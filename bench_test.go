package coaxial

// Micro-benchmarks of the simulator's hot paths. The per-figure experiment
// benchmarks live in figures_bench_test.go.

import (
	"context"
	"testing"

	"coaxial/internal/cache"
	"coaxial/internal/dram"
	"coaxial/internal/memreq"
	"coaxial/internal/sim"
	"coaxial/internal/trace"
)

func BenchmarkTraceGenerator(b *testing.B) {
	w, _ := trace.WorkloadByName("PageRank")
	g := trace.NewSynthetic(w.Params, 1<<40, 1)
	var ins trace.Instr
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&ins)
	}
}

func BenchmarkCacheLookupHit(b *testing.B) {
	c := cache.New(cache.Config{SizeBytes: 512 << 10, Assoc: 8, LatencyCycles: 8})
	for i := 0; i < 1024; i++ {
		c.Fill(uint64(i)*64, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i%1024)*64, false)
	}
}

func BenchmarkCacheFillEvict(b *testing.B) {
	c := cache.New(cache.Config{SizeBytes: 64 << 10, Assoc: 8, LatencyCycles: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i)*64, i%3 == 0)
	}
}

type benchSink struct{ n int }

func (s *benchSink) Complete(r *memreq.Request, now int64) { s.n++ }

func BenchmarkDRAMSubChannelLoaded(b *testing.B) {
	cfg := dram.DefaultConfig()
	s := dram.NewSubChannel(cfg, 1)
	sink := &benchSink{}
	var now int64
	rng := uint64(12345)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		if i%8 == 0 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			s.Enqueue(&memreq.Request{Addr: (rng % (1 << 28)) &^ 63, Kind: memreq.Read, Ret: sink}, now)
		}
		s.Tick(now)
	}
}

func BenchmarkDRAMSubChannelIdle(b *testing.B) {
	s := dram.NewSubChannel(dram.DefaultConfig(), 1)
	var now int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		s.Tick(now)
	}
}

func BenchmarkTimedHeap(b *testing.B) {
	var h memreq.TimedHeap
	r := &memreq.Request{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(int64(i%97), r)
		if h.Len() > 64 {
			h.PopDue(1 << 40)
		}
	}
}

// BenchmarkSystemCycle measures the full-system per-cycle cost of the
// 12-core baseline under load (the simulator's end-to-end throughput).
func BenchmarkSystemCycle(b *testing.B) {
	w, _ := trace.WorkloadByName("PageRank")
	wl := make([]trace.Workload, 12)
	for i := range wl {
		wl[i] = w
	}
	sys, err := sim.NewSystem(sim.Baseline(), wl, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sys.BenchSteps(b.N)
}

// benchSteps builds a system and times BenchSteps under both clocking
// modes as sub-benchmarks.
func benchSteps(b *testing.B, cfg sim.Config, wname string) {
	w, err := trace.WorkloadByName(wname)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		m    sim.Clocking
	}{{"event", sim.EventDriven}, {"cycle", sim.CycleByCycle}} {
		b.Run(mode.name, func(b *testing.B) {
			wl := make([]trace.Workload, cfg.Cores)
			if cfg.ActiveCores > 0 {
				wl = wl[:cfg.ActiveCores]
			}
			for i := range wl {
				wl[i] = w
			}
			sys, err := sim.NewSystem(cfg, wl, 1)
			if err != nil {
				b.Fatal(err)
			}
			sys.SetClocking(mode.m)
			b.ReportAllocs()
			b.ResetTimer()
			sys.BenchSteps(b.N)
		})
	}
}

// BenchmarkSystemStepIdle measures the dead-cycle-dominated regime the
// event loop targets: one active core pointer-chasing (gcc, MPKI 19, fully
// dependent loads) on the asymmetric-CXL system, so the core sleeps on
// full-ROB memory waits while 16 device DDR sub-channels and 4 CXL link
// layers sit idle nearly every cycle.
func BenchmarkSystemStepIdle(b *testing.B) {
	benchSteps(b, sim.CoaxialAsym().WithActiveCores(1), "gcc")
}

// BenchmarkSystemStepLoaded measures the busy regime: all 12 cores running
// PageRank against the single-channel baseline, where nearly every
// component has work every cycle and event-driven clocking can only break
// even.
func BenchmarkSystemStepLoaded(b *testing.B) {
	benchSteps(b, sim.Baseline(), "PageRank")
}

// BenchmarkRunWindow measures a complete warmup+measure experiment window
// on a low-MPKI workload (canneal, MPKI 7) with one active core on the
// asymmetric-CXL system — the configuration where dead cycles dominate
// end-to-end wall-clock: the lone core leaves the 16 device DDR
// sub-channels and 4 CXL link layers idle nearly every cycle, and
// event-driven clocking skips all of them. Measured event-vs-cycle
// speedup is ~3.7x (see BENCH_pr1.json).
func BenchmarkRunWindow(b *testing.B) {
	benchRunWindow(b, "canneal")
}

func benchRunWindow(b *testing.B, wname string) {
	w, err := WorkloadByName(wname)
	if err != nil {
		b.Fatal(err)
	}
	cfg := CoaxialAsym().WithActiveCores(1)
	for _, mode := range []struct {
		name string
		m    Clocking
	}{{"event", EventDriven}, {"cycle", CycleByCycle}} {
		b.Run(wname+"/"+mode.name, func(b *testing.B) {
			rc := RunConfig{
				// Trim the (clocking-independent) functional warmup so the
				// timed loop dominates, as it does in full-length runs.
				FunctionalWarmupInstr: 100_000,
				WarmupInstr:           5_000,
				MeasureInstr:          1_500_000,
				Seed:                  1,
				Clocking:              mode.m,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg, w, rc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchRunWindowWarm times repeated experiment windows through a shared
// Runner: the untimed warmup (LLC pre-fill + functional cache warmup) is
// captured once before the timer starts, and every timed iteration runs
// the timed phases from that snapshot — the sweep steady state, where warm
// keys are shared across points (warm reuse is bit-identical to cold
// starts; see TestWarmStateBitIdentical). The timed loop therefore covers
// system construction, cache cloning, and the timed warmup + measure
// windows, but NOT the one-time functional warmup.
func benchRunWindowWarm(b *testing.B, cfg Config, wl []Workload, name string, extra ...RunnerOption) {
	for _, mode := range []struct {
		name string
		m    Clocking
	}{{"event", EventDriven}, {"cycle", CycleByCycle}} {
		b.Run(name+"/"+mode.name, func(b *testing.B) {
			opts := append([]RunnerOption{
				WithSeed(1),
				WithWindows(100_000, 5_000, 60_000),
				WithClocking(mode.m),
			}, extra...)
			r := NewRunner(opts...)
			ctx := context.Background()
			// Prime the warm snapshot outside the timed region.
			if _, err := r.RunMix(ctx, cfg, wl); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.RunMix(ctx, cfg, wl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunWindowLoaded measures a complete experiment window in the
// loaded regime the paper's headline results live in: all 12 cores of the
// CXL-pooled COAXIAL-4x system running a mixed-MPKI workload assignment
// (Fig. 6 mixes), where nearly every component has work on most cycles and
// event-driven clocking alone breaks even (see BENCH_pr1.json). Windows
// run warm through a shared Runner (see benchRunWindowWarm for what the
// timed loop covers).
func BenchmarkRunWindowLoaded(b *testing.B) {
	benchRunWindowWarm(b, Coaxial4x(), MixWorkloads(3, 12), "mix3")
}

// BenchmarkRunWindowLoadedSampled is BenchmarkRunWindowLoaded under
// sampled simulation (30% detail: 6k-instruction detailed windows,
// 14k-instruction functional gaps), the intended fast mode for long
// windows. Compare against BenchmarkRunWindowLoaded/mix3/event for the
// sampling speedup; TestSampledAccuracyBudget bounds the accuracy cost.
func BenchmarkRunWindowLoadedSampled(b *testing.B) {
	benchRunWindowWarm(b, Coaxial4x(), MixWorkloads(3, 12), "mix3",
		WithSampling(6_000, 14_000))
}

// BenchmarkRunWindowPooled measures the experiment window on the CXL-pooled
// rack configuration under the mixed-MPKI rack workload: 12 cores
// alternating bandwidth-hungry and latency-sensitive jobs over 2 pooled CXL
// channels (2 DDR channels each). Event-vs-cycle is reported for both modes
// so the pooled config's dead-cycle profile is tracked alongside
// BenchmarkRunWindow/BenchmarkRunWindowLoaded (ROADMAP: event-vs-cycle
// coverage for the multi-core CXL-pooled configs). Windows run warm through
// a shared Runner (see benchRunWindowWarm).
func BenchmarkRunWindowPooled(b *testing.B) {
	benchRunWindowWarm(b, CoaxialPooled(), RackMixWorkloads(0, 12), "rack0")
}

// BenchmarkRunWindowRack measures the rack-scale experiment window: a
// 2-host CXL-pooled rack (hosts contending for 2 shared pool devices)
// running staggered mixed-MPKI rack workloads in lockstep, with the host
// phase on 2 goroutines. Event-vs-cycle is reported for both modes so the
// rack loop's dead-cycle profile is tracked alongside the single-host
// windows. Windows run warm through a shared Runner (per-host snapshots
// are memoized under topology-distinct warm keys).
func BenchmarkRunWindowRack(b *testing.B) {
	cfg := TopologyCoaxialPooled(2).Rack
	wls := [][]Workload{RackMixWorkloads(0, 12), RackMixWorkloads(1, 12)}
	for _, mode := range []struct {
		name string
		m    Clocking
	}{{"event", EventDriven}, {"cycle", CycleByCycle}} {
		b.Run("rack2h/"+mode.name, func(b *testing.B) {
			r := NewRunner(
				WithSeed(1),
				WithWindows(100_000, 5_000, 60_000),
				WithClocking(mode.m),
				WithRackParallelism(2),
			)
			ctx := context.Background()
			// Prime the per-host warm snapshots outside the timed region.
			if _, err := r.RunRack(ctx, cfg, wls); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.RunRack(ctx, cfg, wls); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEndRun measures one complete small experiment (warmup +
// measure) as a user of the public API would run it.
func BenchmarkEndToEndRun(b *testing.B) {
	w, _ := WorkloadByName("pop2")
	rc := RunConfig{WarmupInstr: 2_000, MeasureInstr: 10_000, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Baseline(), w, rc); err != nil {
			b.Fatal(err)
		}
	}
}
