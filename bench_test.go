package coaxial

// Micro-benchmarks of the simulator's hot paths. The per-figure experiment
// benchmarks live in figures_bench_test.go.

import (
	"testing"

	"coaxial/internal/cache"
	"coaxial/internal/dram"
	"coaxial/internal/memreq"
	"coaxial/internal/sim"
	"coaxial/internal/trace"
)

func BenchmarkTraceGenerator(b *testing.B) {
	w, _ := trace.WorkloadByName("PageRank")
	g := trace.NewSynthetic(w.Params, 1<<40, 1)
	var ins trace.Instr
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&ins)
	}
}

func BenchmarkCacheLookupHit(b *testing.B) {
	c := cache.New(cache.Config{SizeBytes: 512 << 10, Assoc: 8, LatencyCycles: 8})
	for i := 0; i < 1024; i++ {
		c.Fill(uint64(i)*64, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i%1024)*64, false)
	}
}

func BenchmarkCacheFillEvict(b *testing.B) {
	c := cache.New(cache.Config{SizeBytes: 64 << 10, Assoc: 8, LatencyCycles: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i)*64, i%3 == 0)
	}
}

type benchSink struct{ n int }

func (s *benchSink) Complete(r *memreq.Request, now int64) { s.n++ }

func BenchmarkDRAMSubChannelLoaded(b *testing.B) {
	cfg := dram.DefaultConfig()
	s := dram.NewSubChannel(cfg, 1)
	sink := &benchSink{}
	var now int64
	rng := uint64(12345)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		if i%8 == 0 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			s.Enqueue(&memreq.Request{Addr: (rng % (1 << 28)) &^ 63, Kind: memreq.Read, Ret: sink}, now)
		}
		s.Tick(now)
	}
}

func BenchmarkDRAMSubChannelIdle(b *testing.B) {
	s := dram.NewSubChannel(dram.DefaultConfig(), 1)
	var now int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		s.Tick(now)
	}
}

func BenchmarkTimedHeap(b *testing.B) {
	var h memreq.TimedHeap
	r := &memreq.Request{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(int64(i%97), r)
		if h.Len() > 64 {
			h.PopDue(1 << 40)
		}
	}
}

// BenchmarkSystemCycle measures the full-system per-cycle cost of the
// 12-core baseline under load (the simulator's end-to-end throughput).
func BenchmarkSystemCycle(b *testing.B) {
	w, _ := trace.WorkloadByName("PageRank")
	wl := make([]trace.Workload, 12)
	for i := range wl {
		wl[i] = w
	}
	sys, err := sim.NewSystem(sim.Baseline(), wl, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sys.BenchSteps(b.N)
}

// BenchmarkEndToEndRun measures one complete small experiment (warmup +
// measure) as a user of the public API would run it.
func BenchmarkEndToEndRun(b *testing.B) {
	w, _ := WorkloadByName("pop2")
	rc := RunConfig{WarmupInstr: 2_000, MeasureInstr: 10_000, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Baseline(), w, rc); err != nil {
			b.Fatal(err)
		}
	}
}
