// Tracereplay demonstrates the record/replay workflow the paper's
// artifact uses with ChampSim traces: capture a workload's instruction
// stream once into the compact binary trace format, then replay it
// deterministically through different memory-system designs. Replaying the
// same trace guarantees both systems see byte-identical work.
package main

import (
	"bytes"
	"fmt"
	"log"

	"coaxial"
)

func main() {
	w, err := coaxial.WorkloadByName("PageRank")
	if err != nil {
		log.Fatal(err)
	}

	const cores = 4
	// Record one trace per core instance (distinct address spaces).
	// Length covers functional warmup + timed phases without looping.
	const traceLen = 800_000
	fmt.Printf("recording %d x %d instructions of %s...\n", cores, traceLen, w.Params.Name)
	traces := make([][]byte, cores)
	for c := 0; c < cores; c++ {
		var buf bytes.Buffer
		if err := coaxial.RecordTrace(&buf, w, c, traceLen, 1); err != nil {
			log.Fatal(err)
		}
		traces[c] = buf.Bytes()
		if c == 0 {
			fmt.Printf("  trace size: %d bytes (%.2f B/instr)\n", buf.Len(), float64(buf.Len())/traceLen)
		}
	}

	rc := coaxial.DefaultRunConfig()
	rc.WarmupInstr, rc.MeasureInstr = 5_000, 30_000
	rc.FunctionalWarmupInstr = 200_000
	hints := make([]coaxial.WorkloadParams, cores)
	for i := range hints {
		hints[i] = w.Params
	}

	replay := func(cfg coaxial.Config) coaxial.Result {
		gens := make([]coaxial.Generator, cores)
		for c := range gens {
			g, err := coaxial.OpenTrace(bytes.NewReader(traces[c]))
			if err != nil {
				log.Fatal(err)
			}
			gens[c] = g
		}
		cfg.ActiveCores = cores
		res, err := coaxial.RunGenerators(cfg, gens, hints, rc)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := replay(coaxial.Baseline())
	coax := replay(coaxial.Coaxial4x())

	fmt.Printf("\nreplaying identical traces through both designs (%d active cores):\n", cores)
	fmt.Printf("  %-14s IPC %.3f   L2-miss %4.0f ns (queue %3.0f)   util %2.0f%%\n",
		base.Config, base.IPC, base.TotalNS, base.QueueNS, base.Utilization*100)
	fmt.Printf("  %-14s IPC %.3f   L2-miss %4.0f ns (queue %3.0f)   util %2.0f%%\n",
		coax.Config, coax.IPC, coax.TotalNS, coax.QueueNS, coax.Utilization*100)
	fmt.Printf("  speedup: %.2fx\n", coaxial.Speedup(coax, base))

	// Determinism: a second replay reproduces the result exactly.
	again := replay(coaxial.Coaxial4x())
	if again.IPC == coax.IPC && again.Cycles == coax.Cycles {
		fmt.Println("  replay determinism: exact (same IPC and cycle count)")
	} else {
		fmt.Println("  WARNING: replay diverged!")
	}
}
