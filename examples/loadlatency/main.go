// Loadlatency characterizes a single DDR5-4800 channel's load-latency
// curve (the paper's Fig. 2a): it injects random reads at increasing
// arrival rates and reports how queuing shapes the mean and tail latency.
// This is the motivating phenomenon behind COAXIAL — at realistic loads,
// queuing dwarfs both the DRAM service time and CXL's latency premium.
package main

import (
	"fmt"
	"log"
	"strings"

	"coaxial"
)

func main() {
	utils := []float64{0.02, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	pts, err := coaxial.Fig2aLoadLatency(utils, 1000, 8000, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("DDR5-4800 channel (38.4 GB/s peak), uniformly random reads")
	fmt.Printf("%8s %10s %9s %9s %9s  %s\n", "target", "achieved", "mean", "p90", "p99", "mean latency")
	unloaded := pts[0].MeanNS
	for _, p := range pts {
		bar := strings.Repeat("#", int(p.MeanNS/8))
		fmt.Printf("%7.0f%% %7.1fGB/s %7.0fns %7.0fns %7.0fns  %s\n",
			p.TargetUtil*100, p.AchievedGBs, p.MeanNS, p.P90NS, p.P99NS, bar)
	}
	last := pts[len(pts)-1]
	fmt.Printf("\nmean latency grows %.1fx from unloaded to %.0f%% load;", last.MeanNS/unloaded, last.TargetUtil*100)
	fmt.Printf(" p90 grows %.1fx.\n", last.P90NS/pts[0].P90NS)
	fmt.Println("A hypothetical +50ns CXL premium is small next to these queuing delays.")
}
