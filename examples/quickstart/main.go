// Quickstart: compare the DDR-based baseline against COAXIAL-4x on one
// bandwidth-hungry workload and print the headline numbers — the smallest
// possible use of the coaxial public API.
package main

import (
	"fmt"
	"log"

	"coaxial"
)

func main() {
	w, err := coaxial.WorkloadByName("stream-copy")
	if err != nil {
		log.Fatal(err)
	}

	rc := coaxial.DefaultRunConfig()
	rc.WarmupInstr, rc.MeasureInstr = 10_000, 60_000 // quick demo windows

	base, err := coaxial.Run(coaxial.Baseline(), w, rc)
	if err != nil {
		log.Fatal(err)
	}
	coax, err := coaxial.Run(coaxial.Coaxial4x(), w, rc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n\n", w.Params.Name)
	fmt.Printf("%-22s %12s %12s\n", "", "DDR baseline", "COAXIAL-4x")
	fmt.Printf("%-22s %12.3f %12.3f\n", "IPC", base.IPC, coax.IPC)
	fmt.Printf("%-22s %10.0fns %10.0fns\n", "L2-miss latency", base.TotalNS, coax.TotalNS)
	fmt.Printf("%-22s %10.0fns %10.0fns\n", "  of which queuing", base.QueueNS, coax.QueueNS)
	fmt.Printf("%-22s %10.0fns %10.0fns\n", "  of which CXL", base.CXLNS, coax.CXLNS)
	fmt.Printf("%-22s %11.0f%% %11.0f%%\n", "bandwidth utilization", base.Utilization*100, coax.Utilization*100)
	fmt.Printf("\nCOAXIAL speedup: %.2fx\n", coaxial.Speedup(coax, base))
	fmt.Println("\nDespite adding ~52 ns of CXL interface latency to every miss,")
	fmt.Println("COAXIAL's 4x bandwidth slashes queuing delay and wins overall.")
}
