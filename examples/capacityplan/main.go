// Capacityplan explores the COAXIAL design space the way §IV of the paper
// does: given the processor's pin and die-area budget, it derives the
// candidate memory-system configurations (Table II), then simulates a
// representative workload set on each to pick a design point.
package main

import (
	"fmt"
	"log"

	"coaxial"
)

func main() {
	fmt.Println("Step 1: derive the configuration space under pin/area constraints")
	fmt.Println()
	coaxial.ReportTableII(logWriter{})
	fmt.Println()

	fmt.Println("Step 2: simulate candidates on a representative workload set")
	rc := coaxial.DefaultRunConfig()
	rc.WarmupInstr, rc.MeasureInstr = 10_000, 50_000
	workloads := coaxial.RepresentativeWorkloads()

	candidates := []struct {
		name string
		cfg  coaxial.Config
	}{
		{"COAXIAL-2x (iso-LLC)", coaxial.Coaxial2x()},
		{"COAXIAL-4x (balanced)", coaxial.Coaxial4x()},
		{"COAXIAL-asym (max BW)", coaxial.CoaxialAsym()},
	}

	fmt.Printf("\n%-24s", "workload")
	for _, c := range candidates {
		fmt.Printf(" %22s", c.name)
	}
	fmt.Println()

	sums := make([]float64, len(candidates))
	for _, w := range workloads {
		base, err := coaxial.Run(coaxial.Baseline(), w, rc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s", w.Params.Name)
		for i, c := range candidates {
			res, err := coaxial.Run(c.cfg, w, rc)
			if err != nil {
				log.Fatal(err)
			}
			s := coaxial.Speedup(res, base)
			sums[i] += s
			fmt.Printf(" %21.2fx", s)
		}
		fmt.Println()
	}
	fmt.Printf("%-24s", "mean")
	best, bestIdx := 0.0, 0
	for i := range candidates {
		mean := sums[i] / float64(len(workloads))
		if mean > best {
			best, bestIdx = mean, i
		}
		fmt.Printf(" %21.2fx", mean)
	}
	fmt.Printf("\n\nRecommended design point: %s (mean %.2fx at iso-area)\n",
		candidates[bestIdx].name, best)
}

// logWriter adapts stdout for the report helpers.
type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
