// Mixes evaluates COAXIAL on heterogeneous workload mixes (the paper's
// Fig. 6): each of the 12 cores runs a different randomly sampled
// workload, the common situation on throughput-oriented servers. Mixed
// colocations drive the baseline's memory utilization up, so COAXIAL's
// gains are typically larger than on homogeneous rate-mode runs.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"coaxial"
)

func main() {
	rc := coaxial.DefaultRunConfig()
	rc.WarmupInstr, rc.MeasureInstr = 10_000, 60_000

	const nMixes = 4 // the paper evaluates 10; keep the example fast
	rows, err := coaxial.Fig6Mixes(nMixes, rc)
	if err != nil {
		log.Fatal(err)
	}

	var speedups []float64
	for _, r := range rows {
		speedups = append(speedups, r.Speedup)
		fmt.Printf("mix %d: %s\n", r.Mix, summarize(r.Names))
		fmt.Printf("  baseline util %.0f%%  coaxial util %.0f%%  per-core-geomean speedup %.2fx\n\n",
			r.Base.Utilization*100, r.Coax.Utilization*100, r.Speedup)
	}
	sort.Float64s(speedups)
	fmt.Printf("speedups: min %.2fx, max %.2fx (paper: 1.5x-1.9x, geomean 1.7x)\n",
		speedups[0], speedups[len(speedups)-1])
}

// summarize compresses the 12-name list, counting duplicates.
func summarize(names []string) string {
	count := map[string]int{}
	var order []string
	for _, n := range names {
		if count[n] == 0 {
			order = append(order, n)
		}
		count[n]++
	}
	parts := make([]string, 0, len(order))
	for _, n := range order {
		if count[n] > 1 {
			parts = append(parts, fmt.Sprintf("%s x%d", n, count[n]))
		} else {
			parts = append(parts, n)
		}
	}
	return strings.Join(parts, ", ")
}
