package coaxial

import (
	"fmt"
	"io"

	"coaxial/internal/capacity"
	"coaxial/internal/dram"
	"coaxial/internal/sim"
)

// This file hosts the extension studies beyond the paper's figures: the
// §IV-E capacity/cost analysis and ablations of COAXIAL's design choices
// (channel scaling, CALM threshold, MSHR budget) that DESIGN.md calls out.

// CapacityComparison re-exports the §IV-E capacity/cost row.
type CapacityComparison = capacity.Comparison

// CapacityStudy evaluates DIMM provisioning cost and deliverable bandwidth
// for the baseline (12 DDR channels) vs COAXIAL-4x (48 channels) across
// capacity targets (§IV-E).
func CapacityStudy() ([]CapacityComparison, error) {
	var out []CapacityComparison
	for _, target := range capacity.SweepTargets() {
		c, err := capacity.Compare(target)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// ReportCapacity prints the §IV-E study.
func ReportCapacity(w io.Writer, rows []CapacityComparison) {
	fmt.Fprintln(w, "§IV-E: iso-capacity DIMM provisioning, baseline (12ch) vs COAXIAL-4x (48ch)")
	fmt.Fprintf(w, "  %8s | %-46s | %-46s | %8s %6s\n", "capacity", "baseline plan", "coaxial plan", "cost", "BW")
	for _, r := range rows {
		fmt.Fprintf(w, "  %6dGB | %-46s | %-46s | %+7.0f%% %5.1fx\n",
			r.TargetGB, r.BaselineDesc, r.CoaxialDesc, -r.CostSaving*100, r.BWAdvantage)
	}
	fmt.Fprintln(w, "  (negative cost = COAXIAL cheaper; BW = deliverable DRAM bandwidth ratio)")
}

// ChannelScalingRow is one point of the channel-count ablation: COAXIAL
// with n CXL channels (iso-LLC with the 4x design) vs the DDR baseline.
type ChannelScalingRow struct {
	Channels int
	Speedup  float64
	UtilPct  float64
	QueueNS  float64
}

// AblationChannelScaling sweeps the CXL channel count at fixed LLC
// (1 MB/core, the 4x floorplan) on one workload, isolating how much of
// COAXIAL's gain is pure bandwidth.
func AblationChannelScaling(w Workload, counts []int, rc RunConfig) ([]ChannelScalingRow, error) {
	base, err := Run(Baseline(), w, rc)
	if err != nil {
		return nil, err
	}
	var rows []ChannelScalingRow
	for _, n := range counts {
		cfg := Coaxial4x()
		cfg.Channels = n
		cfg.Name = fmt.Sprintf("coaxial-%dch", n)
		res, err := Run(cfg, w, rc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ChannelScalingRow{
			Channels: n,
			Speedup:  Speedup(res, base),
			UtilPct:  res.Utilization * 100,
			QueueNS:  res.QueueNS,
		})
	}
	return rows, nil
}

// ReportChannelScaling prints the channel ablation.
func ReportChannelScaling(w io.Writer, workload string, rows []ChannelScalingRow) {
	fmt.Fprintf(w, "Ablation: CXL channel count on %s (iso-LLC 1MB/core)\n", workload)
	fmt.Fprintf(w, "  %9s %9s %7s %9s\n", "channels", "speedup", "util%", "queue")
	for _, r := range rows {
		fmt.Fprintf(w, "  %9d %8.2fx %6.0f%% %7.0fns\n", r.Channels, r.Speedup, r.UtilPct, r.QueueNS)
	}
}

// CALMThresholdRow is one point of the CALM_R threshold ablation.
type CALMThresholdRow struct {
	R       float64
	Speedup float64 // over serial-access COAXIAL
	FPPct   float64
	FNPct   float64
}

// AblationCALMThreshold sweeps CALM_R's regulation threshold on COAXIAL-4x
// for one workload (extends Fig. 7's 50/60/70% points to a full curve).
func AblationCALMThreshold(w Workload, thresholds []float64, rc RunConfig) ([]CALMThresholdRow, error) {
	serial, err := Run(Coaxial4x().WithCALM(CALMConfig{Kind: CALMOff}), w, rc)
	if err != nil {
		return nil, err
	}
	var rows []CALMThresholdRow
	for _, r := range thresholds {
		res, err := Run(Coaxial4x().WithCALM(CALMR(r)), w, rc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CALMThresholdRow{
			R:       r,
			Speedup: Speedup(res, serial),
			FPPct:   res.CALM.FPRate() * 100,
			FNPct:   res.CALM.FNRate() * 100,
		})
	}
	return rows, nil
}

// ReportCALMThreshold prints the CALM_R threshold ablation.
func ReportCALMThreshold(w io.Writer, workload string, rows []CALMThresholdRow) {
	fmt.Fprintf(w, "Ablation: CALM_R threshold on %s (COAXIAL-4x, vs serial access)\n", workload)
	fmt.Fprintf(w, "  %6s %9s %7s %7s\n", "R", "speedup", "FP%", "FN%")
	for _, r := range rows {
		fmt.Fprintf(w, "  %5.0f%% %8.3fx %6.1f%% %6.1f%%\n", r.R*100, r.Speedup, r.FPPct, r.FNPct)
	}
}

// MSHRRow is one point of the per-core MSHR budget ablation.
type MSHRRow struct {
	MSHRs        int
	BaselineIPC  float64
	CoaxialIPC   float64
	CoaxSpeedup  float64
	BaseUtilPct  float64
	CoaxUtilPct  float64
	BaseQueueNS  float64
	CoaxQueueNS  float64
	BaseTotalLat float64
}

// AblationMSHRs sweeps the per-core miss-level-parallelism budget: COAXIAL
// needs MLP to exploit its bandwidth; the baseline saturates early.
func AblationMSHRs(w Workload, budgets []int, rc RunConfig) ([]MSHRRow, error) {
	var rows []MSHRRow
	for _, m := range budgets {
		b := Baseline()
		b.MSHRs = m
		b.Name = fmt.Sprintf("ddr-baseline@%dmshr", m)
		c := Coaxial4x()
		c.MSHRs = m
		c.Name = fmt.Sprintf("coaxial-4x@%dmshr", m)
		rb, err := Run(b, w, rc)
		if err != nil {
			return nil, err
		}
		rc2, err := Run(c, w, rc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MSHRRow{
			MSHRs:        m,
			BaselineIPC:  rb.IPC,
			CoaxialIPC:   rc2.IPC,
			CoaxSpeedup:  Speedup(rc2, rb),
			BaseUtilPct:  rb.Utilization * 100,
			CoaxUtilPct:  rc2.Utilization * 100,
			BaseQueueNS:  rb.QueueNS,
			CoaxQueueNS:  rc2.QueueNS,
			BaseTotalLat: rb.TotalNS,
		})
	}
	return rows, nil
}

// ReportMSHRs prints the MSHR ablation.
func ReportMSHRs(w io.Writer, workload string, rows []MSHRRow) {
	fmt.Fprintf(w, "Ablation: per-core MSHR budget on %s\n", workload)
	fmt.Fprintf(w, "  %6s %10s %10s %9s\n", "MSHRs", "base IPC", "coax IPC", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "  %6d %10.3f %10.3f %8.2fx\n", r.MSHRs, r.BaselineIPC, r.CoaxialIPC, r.CoaxSpeedup)
	}
}

// AblationSummary bundles the extension results for the report tool.
type AblationSummary struct {
	Capacity []CapacityComparison
	Channels []ChannelScalingRow
	CALM     []CALMThresholdRow
	MSHRs    []MSHRRow
	IsoPin   []IsoPinRow
	Drain    []WriteDrainRow
	BankPerm []BankPermutationRow
	Refresh  []RefreshRow
	Workload string
}

// RunAblations executes the full extension suite on one representative
// bandwidth-bound workload.
func RunAblations(w Workload, rc RunConfig) (AblationSummary, error) {
	var s AblationSummary
	s.Workload = w.Params.Name
	var err error
	if s.Capacity, err = CapacityStudy(); err != nil {
		return s, err
	}
	if s.Channels, err = AblationChannelScaling(w, []int{1, 2, 3, 4, 5}, rc); err != nil {
		return s, err
	}
	if s.CALM, err = AblationCALMThreshold(w, []float64{0.3, 0.5, 0.6, 0.7, 0.8, 0.9}, rc); err != nil {
		return s, err
	}
	if s.MSHRs, err = AblationMSHRs(w, []int{4, 8, 16, 32}, rc); err != nil {
		return s, err
	}
	if s.IsoPin, err = AblationIsoPin([]Workload{w}, rc); err != nil {
		return s, err
	}
	if s.Drain, err = AblationWriteDrain(w, [][2]int{{8, 2}, {36, 12}, {46, 40}}, rc); err != nil {
		return s, err
	}
	if s.BankPerm, err = AblationBankPermutation(w, rc); err != nil {
		return s, err
	}
	if s.Refresh, err = AblationSameBankRefresh([]float64{0.1, 0.3, 0.5, 0.7}, 6000, rc.Seed); err != nil {
		return s, err
	}
	return s, nil
}

// ReportAblations prints everything in RunAblations' summary.
func ReportAblations(w io.Writer, s AblationSummary) {
	ReportCapacity(w, s.Capacity)
	fmt.Fprintln(w)
	ReportChannelScaling(w, s.Workload, s.Channels)
	fmt.Fprintln(w)
	ReportCALMThreshold(w, s.Workload, s.CALM)
	fmt.Fprintln(w)
	ReportMSHRs(w, s.Workload, s.MSHRs)
	fmt.Fprintln(w)
	ReportIsoPin(w, s.IsoPin)
	fmt.Fprintln(w)
	ReportWriteDrain(w, s.Workload, s.Drain)
	fmt.Fprintln(w)
	ReportBankPermutation(w, s.Workload, s.BankPerm)
	fmt.Fprintln(w)
	ReportSameBankRefresh(w, s.Refresh)
}

// BankPermutationRow contrasts the DRAM bank-index permutation against a
// naive linear bank mapping.
type BankPermutationRow struct {
	Config      string
	PermutedIPC float64
	LinearIPC   float64
	Gain        float64 // permuted/linear
}

// AblationBankPermutation quantifies the bank XOR-permutation's value on
// the baseline and COAXIAL-4x: without it, per-core address-space bases
// and row-sweeping streams pile onto few banks, serializing on tRC.
func AblationBankPermutation(w Workload, rc RunConfig) ([]BankPermutationRow, error) {
	mk := []struct {
		name string
		cfg  Config
	}{
		{"ddr-baseline", Baseline()},
		{"coaxial-4x", Coaxial4x()},
	}
	var rows []BankPermutationRow
	for _, m := range mk {
		perm, err := Run(m.cfg, w, rc)
		if err != nil {
			return nil, err
		}
		lin := m.cfg
		lin.DDR.DisableBankPermutation = true
		lin.Name = m.name + "+linearbank"
		linRes, err := Run(lin, w, rc)
		if err != nil {
			return nil, err
		}
		row := BankPermutationRow{
			Config:      m.name,
			PermutedIPC: perm.IPC,
			LinearIPC:   linRes.IPC,
		}
		if linRes.IPC > 0 {
			row.Gain = perm.IPC / linRes.IPC
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ReportBankPermutation prints the mapping ablation.
func ReportBankPermutation(w io.Writer, workload string, rows []BankPermutationRow) {
	fmt.Fprintf(w, "Ablation: bank-index permutation on %s\n", workload)
	fmt.Fprintf(w, "  %-14s %10s %10s %8s\n", "config", "permuted", "linear", "gain")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s %10.3f %10.3f %7.2fx\n", r.Config, r.PermutedIPC, r.LinearIPC, r.Gain)
	}
}

// IsoPinRow compares the iso-area 4x design against the iso-pin 5x design
// (Table II: +17% die area buys a fifth channel and full-size LLC).
type IsoPinRow struct {
	Workload string
	Speedup4 float64 // COAXIAL-4x over baseline
	Speedup5 float64 // COAXIAL-5x over baseline
}

// AblationIsoPin evaluates whether COAXIAL-5x's extra channel and restored
// LLC justify its 17% area premium.
func AblationIsoPin(workloads []Workload, rc RunConfig) ([]IsoPinRow, error) {
	var rows []IsoPinRow
	for _, w := range workloads {
		base, err := Run(Baseline(), w, rc)
		if err != nil {
			return nil, err
		}
		c4, err := Run(Coaxial4x(), w, rc)
		if err != nil {
			return nil, err
		}
		c5, err := Run(Coaxial5x(), w, rc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, IsoPinRow{
			Workload: w.Params.Name,
			Speedup4: Speedup(c4, base),
			Speedup5: Speedup(c5, base),
		})
	}
	return rows, nil
}

// ReportIsoPin prints the iso-pin ablation.
func ReportIsoPin(w io.Writer, rows []IsoPinRow) {
	fmt.Fprintln(w, "Ablation: iso-area COAXIAL-4x vs iso-pin COAXIAL-5x (+17% die area)")
	fmt.Fprintf(w, "  %-15s %8s %8s\n", "workload", "4x", "5x")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-15s %7.2fx %7.2fx\n", r.Workload, r.Speedup4, r.Speedup5)
	}
}

// WriteDrainRow is one point of the write-drain watermark ablation.
type WriteDrainRow struct {
	High, Low int
	IPC       float64
	QueueNS   float64
}

// AblationWriteDrain sweeps the DDR controller's write-drain hysteresis on
// the baseline with a write-heavy workload: aggressive draining steals read
// slots, lazy draining risks write-queue backpressure.
func AblationWriteDrain(w Workload, marks [][2]int, rc RunConfig) ([]WriteDrainRow, error) {
	var rows []WriteDrainRow
	for _, m := range marks {
		cfg := Baseline()
		cfg.DDR.WriteHigh, cfg.DDR.WriteLow = m[0], m[1]
		cfg.Name = fmt.Sprintf("ddr-baseline@wd%d/%d", m[0], m[1])
		res, err := Run(cfg, w, rc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, WriteDrainRow{High: m[0], Low: m[1], IPC: res.IPC, QueueNS: res.QueueNS})
	}
	return rows, nil
}

// ReportWriteDrain prints the write-drain ablation.
func ReportWriteDrain(w io.Writer, workload string, rows []WriteDrainRow) {
	fmt.Fprintf(w, "Ablation: write-drain watermarks on %s (baseline DDR controller)\n", workload)
	fmt.Fprintf(w, "  %10s %8s %9s\n", "high/low", "IPC", "queue")
	for _, r := range rows {
		fmt.Fprintf(w, "  %5d/%-4d %8.3f %7.0fns\n", r.High, r.Low, r.IPC, r.QueueNS)
	}
}

// RefreshRow contrasts all-bank REF against DDR5 same-bank REFsb on the
// Fig. 2a load-latency curve: fine-granularity refresh removes the
// rank-wide tRFC stall from the tail.
type RefreshRow struct {
	Util        float64
	AllBankP99  float64 // ns
	SameBankP99 float64 // ns
	AllBankMean float64
	SameBankean float64
}

// AblationSameBankRefresh sweeps load points under both refresh modes.
func AblationSameBankRefresh(utils []float64, requests int, seed uint64) ([]RefreshRow, error) {
	ab := dram.DefaultConfig()
	sb := dram.DefaultConfig()
	sb.SameBankRefresh = true
	var rows []RefreshRow
	for _, u := range utils {
		pa, err := sim.LoadLatency(ab, u, requests/10, requests, seed)
		if err != nil {
			return nil, err
		}
		ps, err := sim.LoadLatency(sb, u, requests/10, requests, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RefreshRow{
			Util:        u,
			AllBankP99:  pa.P99NS,
			SameBankP99: ps.P99NS,
			AllBankMean: pa.MeanNS,
			SameBankean: ps.MeanNS,
		})
	}
	return rows, nil
}

// ReportSameBankRefresh prints the refresh-granularity ablation.
func ReportSameBankRefresh(w io.Writer, rows []RefreshRow) {
	fmt.Fprintln(w, "Ablation: all-bank REF vs DDR5 same-bank REFsb (one channel, random reads)")
	fmt.Fprintf(w, "  %6s | %10s %10s | %10s %10s\n", "util", "REF mean", "REF p99", "REFsb mean", "REFsb p99")
	for _, r := range rows {
		fmt.Fprintf(w, "  %5.0f%% | %8.0fns %8.0fns | %8.0fns %8.0fns\n",
			r.Util*100, r.AllBankMean, r.AllBankP99, r.SameBankean, r.SameBankP99)
	}
}
