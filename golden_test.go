package coaxial

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// updateGolden rewrites the golden corpus from the current simulator:
//
//	go test -run TestGoldenResults -update .
//
// Review the resulting testdata/golden diff like any other code change — it
// is the project's record of every intentional shift in simulated numbers.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden result files")

// goldenWindows keeps the corpus cheap enough to regenerate in CI while
// exercising warmup, refresh, and write-drain behaviour.
func goldenWindows() RunConfig {
	rc := DefaultRunConfig()
	rc.FunctionalWarmupInstr = 50_000
	rc.WarmupInstr = 2_000
	rc.MeasureInstr = 10_000
	rc.Seed = 1
	return rc
}

// TestGoldenResults pins complete Result structs for a small
// (config x workload) grid against checked-in JSON. Any change to simulated
// timing, counters, or statistics shows up as a diff here — silent drift in
// any Result field fails the suite until the corpus is deliberately
// regenerated with -update.
func TestGoldenResults(t *testing.T) {
	configs := []func() Config{Baseline, Coaxial4x, CoaxialPooled}
	workloads := []string{"stream-copy", "gcc"}
	rc := goldenWindows()

	for _, mk := range configs {
		cfg := mk()
		for _, wname := range workloads {
			t.Run(cfg.Name+"/"+wname, func(t *testing.T) {
				w, err := WorkloadByName(wname)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(cfg, w, rc)
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')

				path := filepath.Join("testdata", "golden", fmt.Sprintf("%s_%s.json", cfg.Name, wname))
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run `go test -run TestGoldenResults -update .`): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("result drifted from %s\ngot:\n%s\nwant:\n%s\nIf the change is intentional, regenerate with -update.",
						path, got, want)
				}
			})
		}
	}
}

// TestGoldenCoversResultFields is the runtime twin of the static
// counters/encoder-visibility check: every exported numeric field of Result
// (recursively, including slice elements) must survive a JSON round trip
// with its value intact. A field hidden from the encoder — json:"-", an
// accidental MarshalJSON, any future encoding quirk — comes back zeroed and
// fails here, which means drift in that metric could no longer be caught by
// the golden corpus.
func TestGoldenCoversResultFields(t *testing.T) {
	var res Result
	sentinel := 3.0
	fillNumeric(reflect.ValueOf(&res).Elem(), &sentinel)

	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	compareNumeric(t, "Result", reflect.ValueOf(res), reflect.ValueOf(back))

	// Tags that would *silently* thin the corpus are rejected outright:
	// omitempty drops zero values (drift to zero goes undetected), "-"
	// hides the field entirely.
	checkJSONTags(t, "Result", reflect.TypeOf(res))
}

// fillNumeric sets every settable numeric field reachable from v to a
// distinct nonzero sentinel (slices get one filled element).
func fillNumeric(v reflect.Value, next *float64) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() {
				fillNumeric(f, next)
			}
		}
	case reflect.Slice:
		v.Set(reflect.MakeSlice(v.Type(), 1, 1))
		fillNumeric(v.Index(0), next)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(int64(*next))
		*next++
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(uint64(*next))
		*next++
	case reflect.Float32, reflect.Float64:
		v.SetFloat(*next)
		*next++
	}
}

// compareNumeric walks two values in lockstep and reports any numeric field
// whose round-tripped value differs from the original.
func compareNumeric(t *testing.T, path string, a, b reflect.Value) {
	t.Helper()
	switch a.Kind() {
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !a.Type().Field(i).IsExported() {
				continue
			}
			compareNumeric(t, path+"."+a.Type().Field(i).Name, a.Field(i), b.Field(i))
		}
	case reflect.Slice:
		if b.Len() != a.Len() {
			t.Errorf("%s: length %d became %d after JSON round trip", path, a.Len(), b.Len())
			return
		}
		for i := 0; i < a.Len(); i++ {
			compareNumeric(t, fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i))
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if a.Int() != b.Int() {
			t.Errorf("%s: %d became %d after JSON round trip — field invisible to the golden corpus encoder", path, a.Int(), b.Int())
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if a.Uint() != b.Uint() {
			t.Errorf("%s: %d became %d after JSON round trip — field invisible to the golden corpus encoder", path, a.Uint(), b.Uint())
		}
	case reflect.Float32, reflect.Float64:
		if a.Float() != b.Float() {
			t.Errorf("%s: %v became %v after JSON round trip — field invisible to the golden corpus encoder", path, a.Float(), b.Float())
		}
	}
}

// checkJSONTags rejects json tags that hide Result fields from the corpus.
func checkJSONTags(t *testing.T, path string, typ reflect.Type) {
	t.Helper()
	if typ.Kind() != reflect.Struct {
		return
	}
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := f.Tag.Get("json")
		if tag == "-" || strings.Contains(tag, ",omitempty") {
			t.Errorf("%s.%s: json tag %q hides the field (or its zero values) from the golden corpus", path, f.Name, tag)
		}
		ft := f.Type
		if ft.Kind() == reflect.Slice {
			ft = ft.Elem()
		}
		if ft.Kind() == reflect.Struct {
			checkJSONTags(t, path+"."+f.Name, ft)
		}
	}
}
