package coaxial

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden rewrites the golden corpus from the current simulator:
//
//	go test -run TestGoldenResults -update .
//
// Review the resulting testdata/golden diff like any other code change — it
// is the project's record of every intentional shift in simulated numbers.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden result files")

// goldenWindows keeps the corpus cheap enough to regenerate in CI while
// exercising warmup, refresh, and write-drain behaviour.
func goldenWindows() RunConfig {
	rc := DefaultRunConfig()
	rc.FunctionalWarmupInstr = 50_000
	rc.WarmupInstr = 2_000
	rc.MeasureInstr = 10_000
	rc.Seed = 1
	return rc
}

// TestGoldenResults pins complete Result structs for a small
// (config x workload) grid against checked-in JSON. Any change to simulated
// timing, counters, or statistics shows up as a diff here — silent drift in
// any Result field fails the suite until the corpus is deliberately
// regenerated with -update.
func TestGoldenResults(t *testing.T) {
	configs := []func() Config{Baseline, Coaxial4x, CoaxialPooled}
	workloads := []string{"stream-copy", "gcc"}
	rc := goldenWindows()

	for _, mk := range configs {
		cfg := mk()
		for _, wname := range workloads {
			t.Run(cfg.Name+"/"+wname, func(t *testing.T) {
				w, err := WorkloadByName(wname)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(cfg, w, rc)
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')

				path := filepath.Join("testdata", "golden", fmt.Sprintf("%s_%s.json", cfg.Name, wname))
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run `go test -run TestGoldenResults -update .`): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("result drifted from %s\ngot:\n%s\nwant:\n%s\nIf the change is intentional, regenerate with -update.",
						path, got, want)
				}
			})
		}
	}
}
